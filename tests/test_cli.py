"""Tests for the repro-experiments command-line interface."""

import json

import pytest

from repro.validation.cli import _EXPERIMENTS, main


def test_all_experiments_registered():
    assert set(_EXPERIMENTS) == {
        "table1", "table2", "table3", "table4", "table5",
        "figure2", "calibration", "bugwalk", "sampling",
        "warmup", "baselines", "ablation", "diagnose",
    }


def test_warmup_quick(capsys):
    assert main(["warmup", "--quick"]) == 0
    assert "Warm-up profile" in capsys.readouterr().out


def test_diagnose_quick(capsys):
    assert main(["diagnose", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "masked_load_trap_addresses" in out
    assert "Diagnosis" in out


def test_sampling_runs(capsys):
    assert main(["sampling"]) == 0
    out = capsys.readouterr().out
    assert "DCPI" in out
    assert "completed in" in out


def test_table1_runs(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "integer multiply" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["table9"])


def test_quick_flag_accepted(capsys):
    assert main(["sampling", "--quick"]) == 0


def test_trace_emits_jsonl_and_chrome_files(tmp_path, capsys):
    from repro.obs import validate_chrome_trace

    out_dir = tmp_path / "traces"
    assert main([
        "trace", "C-R",
        "--emit-trace", str(out_dir),
        "--trace-limit", "256",
        "--metrics-out", str(tmp_path / "metrics.json"),
    ]) == 0
    out = capsys.readouterr().out
    assert "CPI stacks" in out
    assert "provenance" in out

    jsonl = (out_dir / "C-R.trace.jsonl").read_text().splitlines()
    header = json.loads(jsonl[0])
    assert header["type"] == "header"
    assert header["workload"] == "C-R"
    assert len(jsonl) == 1 + 256
    assert all(
        json.loads(line)["type"] == "event" for line in jsonl[1:]
    )

    chrome = json.loads((out_dir / "C-R.chrome.json").read_text())
    assert validate_chrome_trace(chrome) == []

    metrics = json.loads((tmp_path / "metrics.json").read_text())
    assert metrics["counters"]["pipeline.runs"] == 1


def test_trace_requires_workload():
    with pytest.raises(SystemExit):
        main(["trace"])


def test_trace_rejects_unknown_simulator(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace", "C-R", "--simulator", "sim-imaginary",
              "--emit-trace", str(tmp_path)])


def test_metrics_out_for_experiments(tmp_path, capsys):
    path = tmp_path / "metrics.json"
    assert main(["table1", "--metrics-out", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload["timers"]["experiment.table1"]["count"] == 1
    assert payload["meta"]["experiments"] == ["table1"]
