"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.validation.cli import _EXPERIMENTS, main


def test_all_experiments_registered():
    assert set(_EXPERIMENTS) == {
        "table1", "table2", "table3", "table4", "table5",
        "figure2", "calibration", "bugwalk", "sampling",
        "warmup", "baselines", "ablation", "diagnose",
    }


def test_warmup_quick(capsys):
    assert main(["warmup", "--quick"]) == 0
    assert "Warm-up profile" in capsys.readouterr().out


def test_diagnose_quick(capsys):
    assert main(["diagnose", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "masked_load_trap_addresses" in out
    assert "Diagnosis" in out


def test_sampling_runs(capsys):
    assert main(["sampling"]) == 0
    out = capsys.readouterr().out
    assert "DCPI" in out
    assert "completed in" in out


def test_table1_runs(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "integer multiply" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["table9"])


def test_quick_flag_accepted(capsys):
    assert main(["sampling", "--quick"]) == 0
