"""Tests for program representation and the builder."""

import pytest

from repro.isa.instructions import Opcode
from repro.isa.program import CODE_BASE, DATA_BASE, Program, ProgramBuilder


def _tiny_loop() -> Program:
    b = ProgramBuilder("tiny")
    b.load_imm("r1", 0)
    b.label("loop")
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r2", srcs=("r1",), imm=4)
    b.branch(Opcode.BNE, "r2", "loop")
    b.halt()
    return b.build()


class TestProgram:
    def test_pc_math(self):
        program = _tiny_loop()
        assert program.pc_of(0) == CODE_BASE
        assert program.pc_of(3) == CODE_BASE + 12
        assert program.index_of(program.pc_of(2)) == 2

    def test_index_of_rejects_misaligned(self):
        program = _tiny_loop()
        with pytest.raises(ValueError, match="misaligned"):
            program.index_of(CODE_BASE + 2)

    def test_index_of_rejects_out_of_range(self):
        program = _tiny_loop()
        with pytest.raises(ValueError, match="outside"):
            program.index_of(CODE_BASE + 4 * 1000)

    def test_target_resolution(self):
        program = _tiny_loop()
        branch_index = 3
        assert program.instructions[branch_index].opcode is Opcode.BNE
        assert program.target_index(branch_index) == program.labels["loop"]

    def test_undefined_label_rejected(self):
        b = ProgramBuilder("bad")
        b.emit(Opcode.BR, target="nowhere")
        with pytest.raises(ValueError, match="undefined"):
            b.build()

    def test_octaword_helpers(self):
        program = _tiny_loop()
        assert program.octaword_of(0) % 16 == 0
        slots = [program.slot_in_octaword(i) for i in range(4)]
        assert slots == [0, 1, 2, 3]

    def test_disassemble_mentions_labels(self):
        text = _tiny_loop().disassemble()
        assert "loop:" in text
        assert "addq" in text

    def test_code_base_alignment_enforced(self):
        with pytest.raises(ValueError, match="aligned"):
            Program(instructions=[], code_base=CODE_BASE + 4)


class TestProgramBuilder:
    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ValueError, match="duplicate"):
            b.label("x")

    def test_fresh_labels_unique(self):
        b = ProgramBuilder()
        labels = {b.fresh_label() for _ in range(100)}
        assert len(labels) == 100

    def test_align_octaword(self):
        b = ProgramBuilder()
        b.emit(Opcode.UNOP)
        b.align_octaword()
        assert b.here % 4 == 0
        b.align_octaword(offset=2)
        assert b.here % 4 == 2

    def test_align_rejects_bad_offset(self):
        with pytest.raises(ValueError):
            ProgramBuilder().align_octaword(offset=4)

    def test_alloc_alignment_and_growth(self):
        b = ProgramBuilder()
        first = b.alloc(100, align=64)
        second = b.alloc(8, align=64)
        assert first % 64 == 0
        assert second % 64 == 0
        assert second >= first + 100

    def test_alloc_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            ProgramBuilder().alloc(8, align=3)

    def test_alloc_words_initialises(self):
        b = ProgramBuilder()
        base = b.alloc_words([10, 20, 30])
        b.halt()
        program = b.build()
        assert program.data[base] == 10
        assert program.data[base + 16] == 30
        assert base >= DATA_BASE

    def test_call_and_ret_helpers(self):
        b = ProgramBuilder()
        b.call("fn")
        b.label("fn")
        b.ret()
        program = b.build()
        assert program.instructions[0].opcode is Opcode.BSR
        assert program.instructions[0].dest == "r26"
        assert program.instructions[1].opcode is Opcode.RET

    def test_branch_helper_rejects_non_branch(self):
        with pytest.raises(ValueError):
            ProgramBuilder().branch(Opcode.ADDQ, "r1", "x")

    def test_entry_label(self):
        b = ProgramBuilder()
        b.halt()
        b.label("start")
        b.halt()
        program = b.build("start")
        assert program.entry == 1
