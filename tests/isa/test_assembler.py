"""Tests for the text assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import Opcode


def test_simple_program():
    program = assemble("""
        lda r1, #5
        addq r2, r1, r1
        halt
    """)
    assert [i.opcode for i in program.instructions] == [
        Opcode.LDA, Opcode.ADDQ, Opcode.HALT
    ]
    assert program.instructions[0].imm == 5


def test_labels_and_branches():
    program = assemble("""
    top:
        subq r1, r1, #1
        bne r1, top
        halt
    """)
    assert program.labels["top"] == 0
    assert program.target_index(1) == 0


def test_label_on_same_line():
    program = assemble("here: halt")
    assert program.labels["here"] == 0


def test_comments_ignored():
    program = assemble("""
        ; full-line comment
        lda r1, #1   ; trailing comment
        halt         // another style
    """)
    assert len(program.instructions) == 2


def test_memory_operands():
    program = assemble("""
        ldq r1, 8(r2)
        stq r1, -16(r3)
        halt
    """)
    load, store, _ = program.instructions
    assert load.base == "r2" and load.disp == 8
    assert store.base == "r3" and store.disp == -16
    assert store.srcs == ("r1",)


def test_hex_immediates():
    program = assemble("lda r1, #0x10\nhalt")
    assert program.instructions[0].imm == 16


def test_indirect_jump_and_ret():
    program = assemble("""
        jmp (r5)
        ret
    """)
    assert program.instructions[0].opcode is Opcode.JMP
    assert program.instructions[0].srcs == ("r5",)
    assert program.instructions[1].opcode is Opcode.RET


def test_call_forms():
    program = assemble("""
        bsr fn
        jsr (r4)
    fn:
        ret
    """)
    assert program.instructions[0].target == "fn"
    assert program.instructions[1].srcs == ("r4",)


def test_align_directive():
    program = assemble("""
        lda r1, #0
        .align 0
        halt
    """)
    # Three unops pad index 1..3; halt lands at index 4.
    assert program.instructions[-1].opcode is Opcode.HALT
    assert len(program.instructions) == 5


def test_word_directive_and_symbol():
    program = assemble("""
        .word table 11, 22, 33
        lda r1, =table
        ldq r2, 0(r1)
        halt
    """)
    base = program.instructions[0].imm
    assert program.data[base] == 11
    assert program.data[base + 16] == 33


def test_space_directive():
    program = assemble("""
        .space buffer 128
        lda r1, =buffer
        halt
    """)
    assert program.instructions[0].imm is not None


def test_unknown_mnemonic_reports_line():
    with pytest.raises(AssemblerError, match="line 2"):
        assemble("lda r1, #1\nbogus r1, r2")


def test_bad_memory_operand():
    with pytest.raises(AssemblerError, match="bad memory operand"):
        assemble("ldq r1, 8[r2]")


def test_undefined_data_symbol():
    with pytest.raises(ValueError, match="undefined data symbol"):
        assemble("lda r1, =missing\nhalt")


def test_bad_directive():
    with pytest.raises(AssemblerError, match="unknown directive"):
        assemble(".bogus 3")


def test_immediate_only_form_reads_zero_register():
    program = assemble("lda r1, #7\nhalt")
    assert program.instructions[0].srcs == ("r31",)
