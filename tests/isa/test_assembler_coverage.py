"""Parametrized assembler coverage: every opcode through text syntax."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.instructions import InstrClass, Opcode

#: Text form for each opcode (one canonical usage).
_FORMS = {
    Opcode.ADDQ: "addq r1, r2, r3",
    Opcode.SUBQ: "subq r1, r2, #4",
    Opcode.AND: "and r1, r2, #0xFF",
    Opcode.OR: "bis r1, r2, r3",
    Opcode.XOR: "xor r1, r2, r3",
    Opcode.SLL: "sll r1, r2, #3",
    Opcode.SRL: "srl r1, r2, #3",
    Opcode.CMPEQ: "cmpeq r1, r2, r3",
    Opcode.CMPLT: "cmplt r1, r2, #10",
    Opcode.CMPLE: "cmple r1, r2, r3",
    Opcode.LDA: "lda r1, #100",
    Opcode.CMOVEQ: "cmoveq r1, r2, r3",
    Opcode.CMOVNE: "cmovne r1, r2, r3",
    Opcode.MULQ: "mulq r1, r2, r3",
    Opcode.LDQ: "ldq r1, 8(r2)",
    Opcode.STQ: "stq r1, 8(r2)",
    Opcode.LDBU: "ldbu r1, 3(r2)",
    Opcode.STB: "stb r1, 3(r2)",
    Opcode.ADDT: "addt f1, f2, f3",
    Opcode.SUBT: "subt f1, f2, f3",
    Opcode.MULT: "mult f1, f2, f3",
    Opcode.DIVS: "divs f1, f2, f3",
    Opcode.DIVT: "divt f1, f2, f3",
    Opcode.SQRTS: "sqrts f1, f2",
    Opcode.SQRTT: "sqrtt f1, f2",
    Opcode.LDT: "ldt f1, 16(r2)",
    Opcode.STT: "stt f1, 16(r2)",
    Opcode.BEQ: "beq r1, target",
    Opcode.BNE: "bne r1, target",
    Opcode.BLT: "blt r1, target",
    Opcode.BGE: "bge r1, target",
    Opcode.BLE: "ble r1, target",
    Opcode.BGT: "bgt r1, target",
    Opcode.BR: "br target",
    Opcode.BSR: "bsr target",
    Opcode.JSR: "jsr (r4)",
    Opcode.JMP: "jmp (r4)",
    Opcode.RET: "ret",
    Opcode.UNOP: "unop",
    Opcode.HALT: "halt",
}


def test_every_opcode_has_a_form():
    assert set(_FORMS) == set(Opcode)


@pytest.mark.parametrize("opcode", list(Opcode),
                         ids=lambda op: op.mnemonic)
def test_opcode_assembles(opcode):
    source = "target:\n    " + _FORMS[opcode]
    program = assemble(source)
    assembled = program.instructions[0]
    assert assembled.opcode is opcode


@pytest.mark.parametrize("opcode", [
    op for op in Opcode if op.klass.is_memory
], ids=lambda op: op.mnemonic)
def test_memory_forms_carry_base_and_disp(opcode):
    program = assemble(_FORMS[opcode])
    instr = program.instructions[0]
    assert instr.base is not None
    assert instr.disp != 0


@pytest.mark.parametrize("opcode", [
    op for op in Opcode
    if op.klass is InstrClass.COND_BRANCH
], ids=lambda op: op.mnemonic)
def test_branches_resolve_targets(opcode):
    program = assemble("target:\n    " + _FORMS[opcode])
    assert program.target_index(0) == 0
