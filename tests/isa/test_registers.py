"""Tests for register naming and conventions."""

import pytest

from repro.isa.registers import (
    ALL_REGS,
    FP_REGS,
    INT_REGS,
    RA,
    SP,
    ZERO_FP,
    ZERO_INT,
    fp_reg,
    int_reg,
    is_fp_reg,
    is_int_reg,
    is_zero_reg,
    scratch_fp_regs,
    scratch_int_regs,
    validate_reg,
)


def test_register_counts():
    assert len(INT_REGS) == 32
    assert len(FP_REGS) == 32
    assert len(ALL_REGS) == 64


def test_classification():
    assert is_int_reg("r0") and is_int_reg("r31")
    assert is_fp_reg("f0") and is_fp_reg("f31")
    assert not is_int_reg("f0")
    assert not is_fp_reg("r0")
    assert not is_int_reg("r32")


def test_zero_registers():
    assert is_zero_reg(ZERO_INT)
    assert is_zero_reg(ZERO_FP)
    assert not is_zero_reg(RA)


def test_conventions():
    assert RA == "r26"
    assert SP == "r30"


def test_validate():
    assert validate_reg("r5") == "r5"
    with pytest.raises(ValueError):
        validate_reg("r99")


def test_indexed_constructors():
    assert int_reg(7) == "r7"
    assert fp_reg(7) == "f7"
    with pytest.raises(ValueError):
        int_reg(32)
    with pytest.raises(ValueError):
        fp_reg(-1)


def test_scratch_excludes_reserved():
    scratch = scratch_int_regs(28)
    assert ZERO_INT not in scratch
    assert RA not in scratch
    assert SP not in scratch
    assert len(scratch) == 28


def test_scratch_exclude_argument():
    scratch = scratch_int_regs(5, exclude=("r1", "r2"))
    assert "r1" not in scratch and "r2" not in scratch


def test_scratch_overflow():
    with pytest.raises(ValueError):
        scratch_int_regs(31)
    with pytest.raises(ValueError):
        scratch_fp_regs(32)
