"""Round-trip tests for the binary instruction encoding."""

import pytest

from repro.functional.machine import FunctionalMachine, run_program
from repro.isa.assembler import assemble
from repro.isa.encoding import (
    EncodingError,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.instructions import Instruction, Opcode
from repro.workloads.kernels import bubble_sort, checksum
from repro.workloads.micro import control_switch, execute_dependent


def _roundtrip(instr, target=None, pool=None):
    pool = pool if pool is not None else []
    word = encode_instruction(instr, target, pool=pool)
    assert 0 <= word < (1 << 32)
    decoded, decoded_target = decode_instruction(word, pool=pool)
    return decoded, decoded_target


class TestInstructionRoundtrip:
    def test_operate_two_regs(self):
        decoded, _ = _roundtrip(
            Instruction(Opcode.ADDQ, dest="r1", srcs=("r2", "r3"))
        )
        assert decoded.opcode is Opcode.ADDQ
        assert decoded.dest == "r1"
        assert decoded.srcs == ("r2", "r3")

    def test_operate_small_literal(self):
        decoded, _ = _roundtrip(
            Instruction(Opcode.SUBQ, dest="r4", srcs=("r5",), imm=100)
        )
        assert decoded.imm == 100

    def test_operate_negative_literal(self):
        decoded, _ = _roundtrip(
            Instruction(Opcode.LDA, dest="r30", srcs=("r30",), imm=-16)
        )
        assert decoded.imm == -16

    def test_large_literal_uses_pool(self):
        pool = []
        decoded, _ = _roundtrip(
            Instruction(Opcode.LDA, dest="r9", srcs=("r31",),
                        imm=0x10000000),
            pool=pool,
        )
        assert pool == [0x10000000]
        assert decoded.imm == 0x10000000

    def test_fp_operate(self):
        decoded, _ = _roundtrip(
            Instruction(Opcode.ADDT, dest="f1", srcs=("f2", "f3"))
        )
        assert decoded.dest == "f1"
        assert decoded.srcs == ("f2", "f3")

    def test_load_store(self):
        load, _ = _roundtrip(
            Instruction(Opcode.LDQ, dest="r1", base="r2", disp=-8)
        )
        assert load.dest == "r1" and load.base == "r2" and load.disp == -8
        store, _ = _roundtrip(
            Instruction(Opcode.STQ, srcs=("r3",), base="r4", disp=24)
        )
        assert store.srcs == ("r3",) and store.disp == 24

    def test_fp_load(self):
        decoded, _ = _roundtrip(
            Instruction(Opcode.LDT, dest="f7", base="r2", disp=0)
        )
        assert decoded.dest == "f7"

    def test_branch_carries_target(self):
        decoded, target = _roundtrip(
            Instruction(Opcode.BNE, srcs=("r5",), target="loop"),
            target=42,
        )
        assert decoded.opcode is Opcode.BNE
        assert decoded.srcs == ("r5",)
        assert target == 42

    def test_indirect_jump(self):
        decoded, target = _roundtrip(
            Instruction(Opcode.JMP, srcs=("r7",))
        )
        assert decoded.srcs == ("r7",)
        assert target is None

    def test_ret(self):
        decoded, _ = _roundtrip(Instruction(Opcode.RET, srcs=("r26",)))
        assert decoded.opcode is Opcode.RET

    def test_nop_and_halt(self):
        assert _roundtrip(Instruction(Opcode.UNOP))[0].opcode is Opcode.UNOP
        assert _roundtrip(Instruction(Opcode.HALT))[0].opcode is Opcode.HALT

    def test_branch_without_target_rejected(self):
        with pytest.raises(EncodingError, match="target"):
            encode_instruction(
                Instruction(Opcode.BR, target="x"), None, pool=[]
            )

    def test_oversized_displacement_rejected(self):
        with pytest.raises(EncodingError, match="displacement"):
            encode_instruction(
                Instruction(Opcode.LDQ, dest="r1", base="r2",
                            disp=1 << 20),
                pool=[],
            )

    def test_unknown_opcode_number_rejected(self):
        with pytest.raises(EncodingError, match="unknown opcode"):
            decode_instruction(63 << 26)


class TestProgramRoundtrip:
    @pytest.mark.parametrize("builder", [
        lambda: assemble("lda r1, #7\naddq r2, r1, r1\nhalt"),
        lambda: control_switch(2, iterations=40),
        lambda: execute_dependent(3, iterations=10),
        bubble_sort,
        lambda: checksum(words=64),
    ])
    def test_identical_execution(self, builder):
        """The reloaded program produces a byte-identical trace."""
        original = builder()
        blob = encode_program(original)
        reloaded = decode_program(blob)
        assert reloaded.name == original.name
        assert len(reloaded.instructions) == len(original.instructions)
        trace_a = run_program(original)
        trace_b = run_program(reloaded)
        assert len(trace_a) == len(trace_b)
        for a, b in zip(trace_a, trace_b):
            assert a.pc == b.pc and a.opcode is b.opcode
            assert a.taken == b.taken and a.eaddr == b.eaddr

    def test_architectural_state_identical(self):
        program = bubble_sort(size=16)
        reloaded = decode_program(encode_program(program))
        machine_a = FunctionalMachine(program)
        machine_a.run()
        machine_b = FunctionalMachine(reloaded)
        machine_b.run()
        assert dict(machine_a.state.memory.words()) == dict(
            machine_b.state.memory.words()
        )

    def test_bad_magic_rejected(self):
        with pytest.raises(EncodingError, match="magic"):
            decode_program(b"NOPE" + b"\x00" * 64)
