"""Tests for the instruction set definition."""

import pytest

from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    INSTRUCTIONS_PER_OCTAWORD,
    LATENCY,
    OCTAWORD_BYTES,
    InstrClass,
    Instruction,
    Opcode,
    opcode_for_mnemonic,
)


class TestInstrClass:
    def test_loads_are_memory(self):
        assert InstrClass.INT_LOAD.is_load
        assert InstrClass.FP_LOAD.is_load
        assert InstrClass.INT_LOAD.is_memory
        assert not InstrClass.INT_LOAD.is_store

    def test_stores_are_memory(self):
        assert InstrClass.INT_STORE.is_store
        assert InstrClass.FP_STORE.is_store
        assert InstrClass.FP_STORE.is_memory

    def test_control_classes(self):
        for klass in (InstrClass.COND_BRANCH, InstrClass.UNCOND_BRANCH,
                      InstrClass.CALL, InstrClass.RETURN, InstrClass.JUMP):
            assert klass.is_control
        assert not InstrClass.INT_ALU.is_control

    def test_fp_classes(self):
        assert InstrClass.FP_ADD.is_fp
        assert InstrClass.FP_LOAD.is_fp
        assert not InstrClass.INT_MUL.is_fp

    def test_indirect_control(self):
        assert InstrClass.JUMP.is_indirect_control
        assert InstrClass.RETURN.is_indirect_control
        assert not InstrClass.COND_BRANCH.is_indirect_control
        assert not InstrClass.UNCOND_BRANCH.is_indirect_control

    def test_every_class_has_a_latency(self):
        for klass in InstrClass:
            assert klass in LATENCY
            assert LATENCY[klass] >= 1


class TestTable1Latencies:
    """The configured latencies are the paper's Table 1."""

    @pytest.mark.parametrize(
        "opcode,expected",
        [
            (Opcode.ADDQ, 1),
            (Opcode.MULQ, 7),
            (Opcode.LDQ, 3),
            (Opcode.ADDT, 4),
            (Opcode.MULT, 4),
            (Opcode.DIVS, 12),
            (Opcode.SQRTS, 18),
            (Opcode.DIVT, 15),
            (Opcode.SQRTT, 33),
            (Opcode.LDT, 4),
            (Opcode.BR, 3),
        ],
    )
    def test_latency(self, opcode, expected):
        assert opcode.latency == expected


class TestOpcode:
    def test_mnemonic_lookup(self):
        assert opcode_for_mnemonic("addq") is Opcode.ADDQ
        assert opcode_for_mnemonic("ADDQ") is Opcode.ADDQ
        assert opcode_for_mnemonic("bis") is Opcode.OR

    def test_unknown_mnemonic(self):
        with pytest.raises(KeyError, match="unknown mnemonic"):
            opcode_for_mnemonic("frobnicate")

    def test_mnemonics_unique(self):
        mnemonics = [op.mnemonic for op in Opcode]
        assert len(mnemonics) == len(set(mnemonics))

    def test_octaword_geometry(self):
        assert OCTAWORD_BYTES == 4 * INSTRUCTION_BYTES
        assert INSTRUCTIONS_PER_OCTAWORD == 4


class TestInstruction:
    def test_defaults(self):
        instr = Instruction(Opcode.UNOP)
        assert instr.dest is None
        assert instr.srcs == ()
        assert instr.klass is InstrClass.NOP

    def test_str_alu(self):
        instr = Instruction(Opcode.ADDQ, dest="r1", srcs=("r2",), imm=5)
        text = str(instr)
        assert "addq" in text
        assert "r1" in text and "r2" in text and "#5" in text

    def test_str_memory(self):
        instr = Instruction(Opcode.LDQ, dest="r1", base="r2", disp=8)
        assert "8(r2)" in str(instr)

    def test_frozen(self):
        instr = Instruction(Opcode.ADDQ, dest="r1")
        with pytest.raises(AttributeError):
            instr.dest = "r2"
