"""End-to-end tests for the simulation job service.

These exercise the acceptance criteria of the service PR over a real
``ThreadingHTTPServer`` on an ephemeral port:

* a grid fetched from ``POST /v1/jobs`` is byte-identical
  (canonically) to the same grid run serially through
  ``Harness.run_grid``;
* N concurrent identical submissions cost exactly one engine
  invocation (dedup by canonical spec hash);
* a repeated submission with ``reuse=false`` recomputes nothing — every
  cell is served from the shared result cache (verified via the
  ``exec.cache.*`` metrics);
* an over-budget tenant gets HTTP 429 with ``Retry-After``;
* graceful shutdown checkpoints the in-flight grid and a fresh server
  over the same state root resumes it with zero recompute.

The simulators are the deterministic fakes from the engine tests,
registered under service-addressable names — fast, but driven through
the exact Harness/engine path real simulators take.
"""

import json
import threading

import pytest

from repro.exec.spec import ExperimentSpec, RunOptions, register_simulator
from repro.exec.spec import _EXTRA_SIMULATORS
from repro.service.app import ServiceApp, build_server
from repro.service.client import ServiceClient, ServiceError
from repro.service.quota import QuotaLedger, QuotaPolicy
from repro.validation.harness import Harness
from repro.workloads.suite import WorkloadSet

from tests.exec.exec_fakes import fake_factory

WORKLOADS = ("C-Ca", "C-Cb")


@pytest.fixture(scope="module")
def fake_sims():
    """Two deterministic fakes, spec-addressable for this module."""
    names = ("svc-fake-a", "svc-fake-b")
    register_simulator(names[0], fake_factory(names[0], cpi=2.0))
    register_simulator(names[1], fake_factory(names[1], cpi=3.0))
    yield names
    for name in names:
        _EXTRA_SIMULATORS.pop(name, None)


class ServerFixture:
    """One app + HTTP server on an ephemeral port, torn down cleanly."""

    def __init__(self, root, **app_kwargs):
        self.app = ServiceApp(root, **app_kwargs)
        self.server = build_server(self.app)
        self.host, self.port = self.server.server_address[:2]
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05}, daemon=True,
        )
        self._thread.start()

    def client(self, tenant="test"):
        return ServiceClient(self.host, self.port, tenant=tenant)

    def close(self):
        self.server.shutdown()
        self._thread.join(timeout=10)
        self.server.server_close()
        self.app.shutdown()


@pytest.fixture
def server(tmp_path):
    fixtures = []

    def factory(root=None, **app_kwargs):
        fixture = ServerFixture(root or tmp_path / "svc", **app_kwargs)
        fixtures.append(fixture)
        return fixture

    yield factory
    for fixture in fixtures:
        fixture.close()


def test_service_grid_matches_serial_harness(server, fake_sims):
    fixture = server()
    spec = ExperimentSpec(fake_sims, WORKLOADS)
    client = fixture.client()

    job = client.submit(spec)
    assert job["state"] == "queued" and not job["deduped"]
    final = client.wait(job["id"], timeout=60)
    assert final["state"] == "done"
    assert final["cells_done"] == final["cells"] == spec.cells

    service_json = client.result_text(job["id"])
    serial = Harness(WorkloadSet()).run_grid(
        spec.factories(), list(spec.workloads)
    )
    assert service_json == serial.to_json(canonical=True)


def test_concurrent_duplicates_cost_one_engine_run(server, fake_sims):
    fixture = server()
    spec = ExperimentSpec(fake_sims, WORKLOADS)
    barrier = threading.Barrier(3)
    outcomes = {}

    def submit(tenant):
        client = fixture.client(tenant)
        barrier.wait()
        job = client.submit(spec)
        final = client.wait(job["id"], timeout=60)
        outcomes[tenant] = (job, client.result_text(job["id"]), final)

    threads = [
        threading.Thread(target=submit, args=(t,))
        for t in ("alice", "bob", "carol")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)

    assert set(outcomes) == {"alice", "bob", "carol"}
    job_ids = {job["id"] for job, _, _ in outcomes.values()}
    assert len(job_ids) == 1, "duplicates must collapse onto one job"
    texts = {text for _, text, _ in outcomes.values()}
    assert len(texts) == 1, "every submitter sees the same bytes"

    metrics = fixture.app.metrics
    assert metrics.counter("service.engine.runs").value == 1
    assert metrics.counter("service.jobs.submitted").value == 1
    assert metrics.counter("service.jobs.deduped").value == 2
    # All three tenants are recorded on the shared job.
    final = next(iter(outcomes.values()))[2]
    assert set(final["tenants"]) == {"alice", "bob", "carol"}


def test_reuse_false_rerun_is_all_cache_hits(server, fake_sims):
    fixture = server()
    spec = ExperimentSpec(fake_sims, WORKLOADS)
    client = fixture.client()
    first = client.submit(spec)
    client.wait(first["id"], timeout=60)

    metrics = fixture.app.metrics
    hits_before = metrics.counter("exec.cache.hits").value
    misses_before = metrics.counter("exec.cache.misses").value

    fresh = client.submit(spec, reuse=False)
    assert not fresh["deduped"] and fresh["id"] != first["id"]
    client.wait(fresh["id"], timeout=60)

    # Second identical submission re-runs nothing: every cell is a
    # cache hit, zero misses.
    assert (
        metrics.counter("exec.cache.hits").value - hits_before
        == spec.cells
    )
    assert metrics.counter("exec.cache.misses").value == misses_before

    events = client.events(fresh["id"])["events"]
    sources = [e["source"] for e in events if e["kind"] == "cell"]
    assert sources == ["cache"] * spec.cells
    assert (
        client.result_text(fresh["id"]) == client.result_text(first["id"])
    )


def test_over_budget_tenant_gets_429(server, fake_sims, tmp_path):
    quota = QuotaLedger(
        QuotaPolicy(max_queued_jobs=4, max_cells_per_day=100_000),
        tenants={"smallfry": QuotaPolicy(max_queued_jobs=4,
                                         max_cells_per_day=3)},
    )
    fixture = server(tmp_path / "quota-svc", quota=quota)
    spec = ExperimentSpec(fake_sims, WORKLOADS)  # 4 cells > 3/day

    with pytest.raises(ServiceError) as excinfo:
        fixture.client("smallfry").submit(spec)
    assert excinfo.value.status == 429
    assert excinfo.value.payload["retry_after_s"] > 0
    assert fixture.app.metrics.counter("service.jobs.throttled").value == 1

    # A better-funded tenant runs the same spec...
    rich = fixture.client("funded")
    job = rich.submit(spec)
    rich.wait(job["id"], timeout=60)
    # ...and the throttled tenant may still *attach* to the finished
    # job: dedup is quota-free by design.
    attach = fixture.client("smallfry").submit(spec)
    assert attach["deduped"] and attach["id"] == job["id"]


def test_queued_job_limit_gets_429(server, fake_sims, tmp_path):
    quota = QuotaLedger(QuotaPolicy(max_queued_jobs=0,
                                    max_cells_per_day=100))
    fixture = server(tmp_path / "jobs-svc", quota=quota)
    with pytest.raises(ServiceError) as excinfo:
        fixture.client().submit(ExperimentSpec(fake_sims, WORKLOADS))
    assert excinfo.value.status == 429


def test_bad_spec_is_400_not_enqueued(server, fake_sims):
    fixture = server()
    client = fixture.client()
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"simulators": ["no-such-sim"],
                       "workloads": ["C-Ca"]})
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"simulators": [fake_sims[0]],
                       "workloads": ["C-Ca"], "bogus_key": 1})
    assert excinfo.value.status == 400
    assert client.jobs() == []


def test_graceful_shutdown_checkpoints_and_resumes(
        server, fake_sims, tmp_path):
    """Stop the service mid-grid; a new server over the same root
    resumes the job from its checkpoint journal with zero recompute."""
    root = tmp_path / "resume-svc"
    gate = threading.Event()
    entered = threading.Event()
    computed = []

    class GatedSim:
        """First cell runs free; the second blocks on ``gate``."""

        def __init__(self, inner):
            self.inner = inner
            self.config = inner.config

        @property
        def name(self):
            return self.inner.name

        def run_trace(self, trace, workload):
            if len(computed) >= 1:
                entered.set()
                assert gate.wait(timeout=30)
            computed.append(workload)
            return self.inner.run_trace(trace, workload)

    base = fake_factory("svc-gated", cpi=2.0)
    register_simulator("svc-gated", lambda: GatedSim(base()))
    try:
        spec = ExperimentSpec(("svc-gated",), ("C-Ca", "C-Cb", "C-R"))
        first = ServerFixture(root)
        client = first.client()
        job = client.submit(spec)

        assert entered.wait(timeout=30), "grid never reached cell 2"
        # Drain while cell 2 is mid-flight: stop() makes the progress
        # hook raise before cell 3, after cell 2 hits the journal.
        first.app.worker.stop()
        gate.set()
        first.close()

        status = json.loads(
            (root / "jobs" / job["id"] / "status.json").read_text()
        )
        assert status["state"] == "queued"
        assert len(computed) == 2, "cell 3 must not run before drain"

        second = ServerFixture(root)
        try:
            client2 = second.client()
            final = client2.wait(job["id"], timeout=60)
            assert final["state"] == "done"
            events = client2.events(job["id"])["events"]
            kinds = [e["kind"] for e in events]
            assert "checkpointed" in kinds
            run_sources = [
                e["source"] for e in events if e["kind"] == "cell"
            ]
            # First server: two computed cells.  Second server: those
            # two replay from the checkpoint, only cell 3 computes.
            assert run_sources.count("checkpoint") == 2
            assert len(computed) == 3
            serial = Harness(WorkloadSet()).run_grid(
                spec.factories(), list(spec.workloads)
            )
            assert (
                client2.result_text(job["id"])
                == serial.to_json(canonical=True)
            )
        finally:
            second.close()
    finally:
        _EXTRA_SIMULATORS.pop("svc-gated", None)


def test_cells_endpoint_serves_cached_results(server, fake_sims):
    fixture = server()
    client = fixture.client()
    job = client.submit(ExperimentSpec(fake_sims, WORKLOADS))
    client.wait(job["id"], timeout=60)

    cache_dir = fixture.app.cache.root
    import os

    digests = [
        name[:-5] for name in os.listdir(cache_dir)
        if name.endswith(".json")
    ]
    assert digests
    payload = client.cell(digests[0])
    assert payload["format"] == "repro-result-cache/1"
    assert "result" in payload
    with pytest.raises(ServiceError) as excinfo:
        client.cell("0" * 16)
    assert excinfo.value.status == 404
