"""Tests for the DCPI-style sampling profiler."""

import pytest

from repro.result import SimResult
from repro.simulators.dcpi import SAMPLING_INTERVALS, DcpiProfiler


def _result(cycles=100_000.0, instructions=50_000, workload="w"):
    return SimResult("DS-10L", workload, cycles, instructions)


def test_interval_range_enforced():
    DcpiProfiler(interval_cycles=1_000)
    DcpiProfiler(interval_cycles=64_000)
    with pytest.raises(ValueError):
        DcpiProfiler(interval_cycles=500)
    with pytest.raises(ValueError):
        DcpiProfiler(interval_cycles=100_000)


def test_supported_intervals_all_valid():
    for interval in SAMPLING_INTERVALS:
        DcpiProfiler(interval_cycles=interval)


def test_dilation_decreases_with_interval():
    short = DcpiProfiler(interval_cycles=1_000)
    long = DcpiProfiler(interval_cycles=64_000)
    assert short.dilation_fraction() > long.dilation_fraction()


def test_quantisation_grows_with_interval():
    short = DcpiProfiler(interval_cycles=1_000)
    long = DcpiProfiler(interval_cycles=64_000)
    assert abs(long.quantisation_fraction("x")) > abs(
        short.quantisation_fraction("x")
    )


def test_measurement_is_deterministic():
    profiler = DcpiProfiler()
    a = profiler.measure(_result())
    b = profiler.measure(_result())
    assert a.cycles == b.cycles


def test_measurement_error_is_small():
    profiler = DcpiProfiler()
    measured = profiler.measure(_result())
    assert abs(measured.cycles - 100_000.0) / 100_000.0 < 0.02


def test_noise_varies_by_workload():
    profiler = DcpiProfiler()
    cycles = {
        workload: profiler.measure(_result(workload=workload)).cycles
        for workload in ("a", "b", "c", "d")
    }
    assert len(set(cycles.values())) > 1


def test_measured_ipc_capped_at_retire_width():
    profiler = DcpiProfiler()
    absurd = _result(cycles=10.0, instructions=10_000)
    measured = profiler.measure(absurd)
    assert measured.instructions / measured.cycles <= 11.0


def test_error_profile_components():
    profiler = DcpiProfiler()
    dilation, quantisation = profiler.error_profile("w")
    assert dilation > 0
    assert -0.01 < quantisation < 0.01
