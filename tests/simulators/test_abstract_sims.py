"""Tests for sim-outorder and the 8-way study simulator."""

from dataclasses import replace

import pytest

from repro.functional.machine import run_program
from repro.isa.assembler import assemble
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder
from repro.memory.cache import CacheConfig
from repro.simulators.eightway import EightWayConfig, EightWaySim
from repro.simulators.simoutorder import OutOrderConfig, SimOutOrder


def _loop_trace(body_adds=8, iterations=300):
    b = ProgramBuilder("loop")
    b.load_imm("r9", 0)
    b.label("loop")
    for i in range(body_adds):
        reg = f"r{1 + (i % 8)}"
        b.emit(Opcode.ADDQ, dest=reg, srcs=(reg,), imm=1)
    b.emit(Opcode.ADDQ, dest="r9", srcs=("r9",), imm=1)
    b.emit(Opcode.CMPLT, dest="r10", srcs=("r9",), imm=iterations)
    b.branch(Opcode.BNE, "r10", "loop")
    b.halt()
    return run_program(b.build())


def _chain_trace(length=300):
    b = ProgramBuilder("chain")
    b.load_imm("r9", 0)
    b.label("loop")
    for _ in range(20):
        b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.ADDQ, dest="r9", srcs=("r9",), imm=1)
    b.emit(Opcode.CMPLT, dest="r10", srcs=("r9",), imm=length)
    b.branch(Opcode.BNE, "r10", "loop")
    b.halt()
    return run_program(b.build())


class TestSimOutOrder:
    def test_width_bound(self):
        result = SimOutOrder().run_trace(_loop_trace(), "loop")
        assert result.ipc <= 4.05

    def test_dependence_bound(self):
        result = SimOutOrder().run_trace(_chain_trace(), "chain")
        # 20-op serial chain + ~3 parallel ops per iteration.
        assert result.ipc < 1.6

    def test_no_octaword_alignment_sensitivity(self):
        """Unlike the 21264 engine, fetch ignores alignment."""
        b = ProgramBuilder("misaligned")
        b.load_imm("r9", 0)
        b.unop(2)  # loop head lands mid-octaword
        b.label("loop")
        for i in range(7):
            reg = f"r{1 + i}"
            b.emit(Opcode.ADDQ, dest=reg, srcs=(reg,), imm=1)
        b.emit(Opcode.ADDQ, dest="r9", srcs=("r9",), imm=1)
        b.emit(Opcode.CMPLT, dest="r10", srcs=("r9",), imm=300)
        b.branch(Opcode.BNE, "r10", "loop")
        b.halt()
        result = SimOutOrder().run_trace(run_program(b.build()), "m")
        assert result.ipc > 3.0

    def test_l1_latency_config(self):
        # A pointer chase puts the load latency on the critical path.
        b = ProgramBuilder("chase")
        head = b.alloc_words([0])
        b.poke(head, head)  # self-pointing node
        b.load_imm("r9", head)
        b.load_imm("r1", 0)
        b.label("loop")
        b.emit(Opcode.LDQ, dest="r9", base="r9", disp=0)
        b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
        b.emit(Opcode.CMPLT, dest="r4", srcs=("r1",), imm=300)
        b.branch(Opcode.BNE, "r4", "loop")
        b.halt()
        trace = run_program(b.build())
        slow = SimOutOrder(OutOrderConfig(l1_latency=3)).run_trace(trace, "x")
        fast = SimOutOrder(OutOrderConfig(l1_latency=1)).run_trace(trace, "x")
        assert fast.cycles < slow.cycles

    def test_separate_phys_regs_constrain(self):
        trace = _loop_trace(body_adds=32, iterations=200)
        unconstrained = SimOutOrder().run_trace(trace, "x")
        constrained = SimOutOrder(
            OutOrderConfig(separate_phys_regs=8)
        ).run_trace(trace, "x")
        assert constrained.cycles > unconstrained.cycles

    def test_with_l1_latency_helper(self):
        config = OutOrderConfig().with_l1_latency(1)
        assert config.l1_latency == 1


class TestEightWay:
    def test_wider_than_outorder(self):
        trace = _loop_trace(body_adds=24, iterations=200)
        eight = EightWaySim().run_trace(trace, "x")
        four = SimOutOrder().run_trace(trace, "x")
        assert eight.ipc > four.ipc

    def test_partial_bypass_costs(self):
        trace = _chain_trace()
        full = EightWaySim(
            EightWayConfig().with_regfile(2, True)
        ).run_trace(trace, "x")
        partial = EightWaySim(
            EightWayConfig().with_regfile(2, False)
        ).run_trace(trace, "x")
        assert partial.cycles > full.cycles

    def test_regfile_depth_costs_on_mispredicts(self):
        trace = _loop_trace()
        shallow = EightWaySim(
            EightWayConfig().with_regfile(1, True)
        ).run_trace(trace, "x")
        deep = EightWaySim(
            EightWayConfig().with_regfile(3, True)
        ).run_trace(trace, "x")
        assert deep.cycles >= shallow.cycles

    def test_config_naming(self):
        config = EightWayConfig().with_regfile(2, False)
        assert "rf2partial" in config.name
