"""More sim-outorder behaviours: predictors, window, commit."""

from dataclasses import replace

import pytest

from repro.functional.machine import run_program
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder
from repro.simulators.simoutorder import OutOrderConfig, SimOutOrder


def _loop(body_emit, iterations=300, name="loop"):
    b = ProgramBuilder(name)
    b.load_imm("r9", 0)
    b.label("loop")
    body_emit(b)
    b.emit(Opcode.ADDQ, dest="r9", srcs=("r9",), imm=1)
    b.emit(Opcode.CMPLT, dest="r10", srcs=("r9",), imm=iterations)
    b.branch(Opcode.BNE, "r10", "loop")
    b.halt()
    return run_program(b.build())


def test_btb_learns_stable_targets():
    trace = _loop(lambda b: b.emit(Opcode.ADDQ, dest="r1",
                                   srcs=("r1",), imm=1))
    result = SimOutOrder().run_trace(trace, "loop")
    # The loop-back branch trains quickly; its target stays in the BTB.
    assert result.stats.branch_mispredicts < 20


def test_ras_handles_calls():
    b = ProgramBuilder("calls")
    b.load_imm("r9", 0)
    b.label("loop")
    b.call("leaf")
    b.emit(Opcode.ADDQ, dest="r9", srcs=("r9",), imm=1)
    b.emit(Opcode.CMPLT, dest="r10", srcs=("r9",), imm=200)
    b.branch(Opcode.BNE, "r10", "loop")
    b.halt()
    b.label("leaf")
    b.emit(Opcode.ADDQ, dest="r3", srcs=("r3",), imm=1)
    b.ret()
    trace = run_program(b.build())
    result = SimOutOrder().run_trace(trace, "calls")
    assert result.stats.ras_mispredicts < 5


def test_bigger_window_tolerates_latency():
    b = ProgramBuilder("latency")
    arrays = b.alloc(1 << 22, align=64)
    b.load_imm("r9", arrays)
    b.load_imm("r1", 0)
    b.label("loop")
    for i in range(2):
        b.emit(Opcode.SLL, dest="r13", srcs=("r1",), imm=8)
        b.emit(Opcode.LDA, dest="r13", srcs=("r13",), imm=i * 1048704)
        b.emit(Opcode.ADDQ, dest="r13", srcs=("r13", "r9"))
        b.emit(Opcode.LDQ, dest=f"r{3 + i}", base="r13", disp=0)
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r2", srcs=("r1",), imm=300)
    b.branch(Opcode.BNE, "r2", "loop")
    b.halt()
    trace = run_program(b.build())
    small = SimOutOrder(OutOrderConfig(ruu_size=8)).run_trace(trace, "x")
    big = SimOutOrder(OutOrderConfig(ruu_size=128)).run_trace(trace, "x")
    assert big.cycles < small.cycles


def test_commit_width_caps_ipc():
    trace = _loop(lambda b: [
        b.emit(Opcode.ADDQ, dest=f"r{1 + i}", srcs=(f"r{1 + i}",), imm=1)
        for i in range(6)
    ])
    wide = SimOutOrder(OutOrderConfig(commit_width=8,
                                      fetch_width=8,
                                      issue_width=8,
                                      int_alu_units=8)).run_trace(trace, "x")
    narrow = SimOutOrder(OutOrderConfig(commit_width=2)).run_trace(trace, "x")
    assert narrow.ipc <= 2.01
    assert wide.ipc > narrow.ipc


def test_lsq_pressure():
    def body(b):
        for i in range(4):
            b.emit(Opcode.STQ, srcs=("r9",), base="r9", disp=4096 + 8 * i)
    trace = _loop(body, iterations=200, name="stores")
    roomy = SimOutOrder().run_trace(trace, "stores")
    cramped = SimOutOrder(OutOrderConfig(lsq_size=2)).run_trace(
        trace, "stores"
    )
    assert cramped.cycles >= roomy.cycles


def test_name_property():
    assert SimOutOrder().name == "sim-outorder"
    assert SimOutOrder(OutOrderConfig(name="custom")).name == "custom"
