"""Tests for the dataflow-limit machine."""

import pytest

from repro.core.simalpha import SimAlpha
from repro.functional.machine import run_program
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder
from repro.simulators.perfect import PerfectConfig, PerfectMachine
from repro.simulators.simoutorder import SimOutOrder
from repro.validation.harness import Harness


@pytest.fixture(scope="module")
def harness():
    return Harness()


def test_serial_chain_is_the_critical_path():
    b = ProgramBuilder("chain")
    b.load_imm("r1", 1)
    for _ in range(100):
        b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.halt()
    result = PerfectMachine().run_trace(run_program(b.build()), "chain")
    # 1 (lda) + 100 adds at latency 1 each.
    assert result.cycles == 101.0


def test_independent_work_is_free():
    b = ProgramBuilder("parallel")
    for i in range(64):
        b.emit(Opcode.ADDQ, dest=f"r{1 + (i % 8)}",
               srcs=(f"r{1 + (i % 8)}",), imm=1)
    b.halt()
    result = PerfectMachine().run_trace(run_program(b.build()), "parallel")
    # Eight chains of eight: critical path 8 cycles.
    assert result.cycles == 8.0


def test_multiply_latency_counts():
    b = ProgramBuilder("mul")
    b.load_imm("r1", 1)
    for _ in range(10):
        b.emit(Opcode.MULQ, dest="r1", srcs=("r1",), imm=1)
    b.halt()
    result = PerfectMachine().run_trace(run_program(b.build()), "mul")
    assert result.cycles == 1 + 10 * 7


def test_load_latency_configurable():
    b = ProgramBuilder("chase")
    head = b.alloc_words([0])
    b.poke(head, head)
    b.load_imm("r9", head)
    for _ in range(10):
        b.emit(Opcode.LDQ, dest="r9", base="r9", disp=0)
    b.halt()
    trace = run_program(b.build())
    default = PerfectMachine().run_trace(trace, "chase")
    fast = PerfectMachine(PerfectConfig(load_latency=1)).run_trace(
        trace, "chase"
    )
    assert default.cycles - fast.cycles == 10 * 2


def test_bounds_every_real_machine(harness):
    """No configuration may beat the dataflow limit."""
    for workload in ("C-Ca", "E-D3", "gzip"):
        trace = harness.workloads.trace(workload)
        limit = PerfectMachine().run_trace(trace, workload)
        for factory in (SimAlpha, SimOutOrder):
            real = factory().run_trace(trace, workload)
            assert real.cycles >= limit.cycles, (workload, real.simulator)


def test_nops_are_free():
    b = ProgramBuilder("nops")
    b.unop(50)
    b.halt()
    result = PerfectMachine().run_trace(run_program(b.build()), "nops")
    assert result.cycles == 1.0
