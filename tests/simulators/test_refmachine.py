"""Tests for the NativeMachine (DS-10L stand-in)."""

from repro.core.config import NativeEffects
from repro.functional.machine import run_program
from repro.isa.assembler import assemble
from repro.simulators.refmachine import NativeMachine, make_native_machine


def _trace():
    return run_program(assemble("""
        lda r1, #0
    loop:
        addq r1, r1, #1
        cmplt r2, r1, #500
        bne r2, loop
        halt
    """))


def test_name_and_config():
    machine = make_native_machine()
    assert machine.name == "DS-10L"
    assert machine.config.native == NativeEffects.ds10l()


def test_all_native_effects_enabled():
    effects = NativeEffects.ds10l()
    assert effects.page_coloring
    assert effects.controller_page_opt
    assert effects.shared_maf
    assert effects.store_port_contention
    assert effects.pal_tlb_misses
    assert effects.writeback_traffic
    assert effects.split_memory_bus
    assert effects.extra_replay_traps


def test_none_disables_everything():
    effects = NativeEffects.none()
    assert effects == NativeEffects()


def test_measured_differs_from_exact():
    trace = _trace()
    measured = NativeMachine(measure=True).run_trace(trace, "loop")
    exact = NativeMachine(measure=False).run_trace(trace, "loop")
    assert measured.cycles != exact.cycles
    # ... but only slightly (DCPI error is sub-percent at 40K).
    assert abs(measured.cycles - exact.cycles) / exact.cycles < 0.02


def test_sampling_interval_configurable():
    trace = _trace()
    fine = NativeMachine(sampling_interval=1_000).run_trace(trace, "loop")
    coarse = NativeMachine(sampling_interval=64_000).run_trace(trace, "loop")
    # The 1K interval dilates execution more.
    assert fine.cycles > coarse.cycles


def test_deterministic():
    trace = _trace()
    a = NativeMachine().run_trace(trace, "loop")
    b = NativeMachine().run_trace(trace, "loop")
    assert a.cycles == b.cycles
