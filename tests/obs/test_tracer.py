"""Tracer ring-buffer bounds and the JSONL / Chrome export schemas."""

import json

import pytest

from repro.obs.tracer import PipelineTracer, TraceEvent, validate_chrome_trace


def make_event(seq: int, **overrides) -> TraceEvent:
    base = dict(
        seq=seq, pc=0x1000 + 4 * seq, op="addq", klass="INT_ALU",
        fetch=float(seq), map=seq + 2.0, issue=seq + 3.0,
        complete=seq + 5.0, retire=seq + 6.0, cause="base", events=(),
    )
    base.update(overrides)
    return TraceEvent(**base)


class TestRingBuffer:
    def test_retains_most_recent(self):
        tracer = PipelineTracer(capacity=4)
        for seq in range(10):
            tracer.record(make_event(seq))
        assert len(tracer) == 4
        assert [e.seq for e in tracer.events] == [6, 7, 8, 9]

    def test_counts_recorded_and_dropped(self):
        tracer = PipelineTracer(capacity=3)
        for seq in range(8):
            tracer.record(make_event(seq))
        assert tracer.recorded == 8
        assert tracer.dropped == 5

    def test_under_capacity_drops_nothing(self):
        tracer = PipelineTracer(capacity=100)
        tracer.record(make_event(0))
        assert tracer.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PipelineTracer(capacity=0)


class TestJsonlExport:
    def test_header_then_events(self, tmp_path):
        tracer = PipelineTracer(capacity=8)
        for seq in range(3):
            tracer.record(make_event(seq, events=("dcache_misses",)))
        path = tmp_path / "run.trace.jsonl"
        tracer.write_jsonl(
            str(path), simulator="sim-alpha", workload="M-D",
            provenance={"config_hash": "abc"},
        )
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 4
        header, *events = lines
        assert header["type"] == "header"
        assert header["format"] == "repro-pipeline-trace/1"
        assert header["simulator"] == "sim-alpha"
        assert header["workload"] == "M-D"
        assert header["recorded"] == 3
        assert header["provenance"] == {"config_hash": "abc"}
        for entry in events:
            assert entry["type"] == "event"
            for key in ("seq", "pc", "op", "class", "fetch", "map",
                        "issue", "complete", "retire", "cause", "events"):
                assert key in entry
        assert events[0]["events"] == ["dcache_misses"]

    def test_stage_times_are_ordered(self, tmp_path):
        tracer = PipelineTracer()
        tracer.record(make_event(0))
        path = tmp_path / "t.jsonl"
        tracer.write_jsonl(str(path))
        event = json.loads(path.read_text().splitlines()[1])
        assert (event["fetch"] <= event["map"] <= event["issue"]
                <= event["complete"] <= event["retire"])


class TestChromeExport:
    def test_payload_passes_schema_check(self, tmp_path):
        tracer = PipelineTracer()
        for seq in range(5):
            tracer.record(make_event(seq))
        path = tmp_path / "run.chrome.json"
        tracer.write_chrome_trace(str(path), workload="C-R")
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["workload"] == "C-R"

    def test_four_slices_per_instruction(self):
        tracer = PipelineTracer()
        tracer.record(make_event(0))
        events = tracer.chrome_events()
        slices = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(slices) == 4
        assert len(metadata) == 4  # one thread_name per stage track
        assert {s["cat"] for s in slices} == {
            "fetch", "map", "execute", "retire",
        }

    def test_durations_never_zero(self):
        tracer = PipelineTracer()
        # Zero-length stages (map == issue == complete == retire).
        tracer.record(make_event(0, map=2.0, issue=2.0, complete=2.0,
                                 retire=2.0))
        for event in tracer.chrome_events():
            if event["ph"] == "X":
                assert event["dur"] > 0

    def test_validator_flags_malformed(self):
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"
        ]
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "pid": 0, "tid": 1,
                              "name": "n", "ts": 0.0}]}
        )
        assert any("dur" in p for p in problems)
