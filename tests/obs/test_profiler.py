"""Hot-path profiler: lap partition, component nesting, coverage."""

import pytest

from repro.core.simalpha import SimAlpha
from repro.obs.observer import Instrumentation
from repro.obs.profiler import PHASES, HotPathProfiler
from repro.validation.harness import Harness


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now

    def __call__(self) -> float:
        return self.now


class TestLapTimeline:
    def test_laps_partition_the_run_exactly(self):
        clock = FakeClock()
        prof = HotPathProfiler(clock=clock)
        prof.run_begin()
        clock.advance(1.0)
        prof.lap("fetch")
        clock.advance(2.0)
        prof.lap("issue")
        clock.advance(0.5)
        prof.lap("retire")
        clock.advance(0.25)
        prof.run_end()  # tail -> finalize
        assert prof.phases == {
            "fetch": 1.0, "issue": 2.0, "retire": 0.5, "finalize": 0.25,
        }
        assert prof.total_s == pytest.approx(3.75)
        assert prof.coverage == pytest.approx(1.0)
        assert prof.runs == 1

    def test_multiple_runs_accumulate(self):
        clock = FakeClock()
        prof = HotPathProfiler(clock=clock)
        for _ in range(3):
            prof.run_begin()
            clock.advance(1.0)
            prof.lap("fetch")
            prof.run_end()
        assert prof.runs == 3
        assert prof.phases["fetch"] == pytest.approx(3.0)
        assert prof.total_s == pytest.approx(3.0)

    def test_repeated_phase_laps_accumulate(self):
        clock = FakeClock()
        prof = HotPathProfiler(clock=clock)
        prof.run_begin()
        for _ in range(4):
            clock.advance(0.5)
            prof.lap("mem")
        prof.run_end()
        assert prof.phases["mem"] == pytest.approx(2.0)

    def test_run_end_without_begin_is_a_noop(self):
        prof = HotPathProfiler()
        prof.run_end()
        assert prof.runs == 0
        assert prof.total_s == 0.0


class TestComponentNesting:
    def test_nested_component_time_is_exclusive(self):
        clock = FakeClock()
        prof = HotPathProfiler(clock=clock)
        outer = prof.cstart()          # e.g. L2 access
        clock.advance(1.0)
        inner = prof.cstart()          # DRAM inside it
        clock.advance(3.0)
        prof.cstop("mem/dram", inner)
        clock.advance(0.5)
        prof.cstop("mem/l2", outer)
        assert prof.components["mem/dram"] == pytest.approx(3.0)
        # L2's self time excludes the DRAM interval it contained.
        assert prof.components["mem/l2"] == pytest.approx(1.5)
        assert prof.component_calls == {"mem/dram": 1, "mem/l2": 1}

    def test_sibling_calls_both_report_to_parent(self):
        clock = FakeClock()
        prof = HotPathProfiler(clock=clock)
        outer = prof.cstart()
        for _ in range(2):
            inner = prof.cstart()
            clock.advance(1.0)
            prof.cstop("mem/dram", inner)
        prof.cstop("mem/l2", outer)
        assert prof.components["mem/dram"] == pytest.approx(2.0)
        assert prof.components["mem/l2"] == pytest.approx(0.0)
        assert prof.component_calls["mem/dram"] == 2

    def test_wrap_is_idempotent(self):
        class Leaf:
            def hit(self):
                return 42

        prof = HotPathProfiler()
        leaf = Leaf()
        prof._wrap(leaf, "hit", "mem/leaf")
        prof._wrap(leaf, "hit", "mem/leaf")  # second wrap must not stack
        assert leaf.hit() == 42
        assert prof.component_calls["mem/leaf"] == 1


class TestCollapsedStacks:
    def test_component_self_time_subtracted_from_parent_phase(self):
        clock = FakeClock()
        prof = HotPathProfiler(clock=clock)
        prof.run_begin()
        token = prof.cstart()
        clock.advance(1.0)
        prof.cstop("mem/dcache", token)
        clock.advance(1.0)
        prof.lap("mem")  # phase mem = 2.0s, of which dcache self = 1.0s
        prof.run_end()
        lines = prof.collapsed_stacks()
        assert "pipeline;mem 1000000" in lines
        assert "pipeline;mem;dcache 1000000" in lines

    def test_write_collapsed_round_trips(self, tmp_path):
        clock = FakeClock()
        prof = HotPathProfiler(clock=clock)
        prof.run_begin()
        clock.advance(0.5)
        prof.lap("fetch")
        prof.run_end()
        path = tmp_path / "out.collapsed.txt"
        prof.write_collapsed(path)
        assert path.read_text().splitlines() == prof.collapsed_stacks()

    def test_zero_width_frames_are_dropped(self):
        prof = HotPathProfiler(clock=FakeClock())
        prof.run_begin()
        prof.lap("fetch")  # zero elapsed
        prof.run_end()
        assert prof.collapsed_stacks() == []


class TestRealPipeline:
    @pytest.fixture(scope="class")
    def profiled(self):
        inst = Instrumentation(profile=True)
        harness = Harness()
        result = harness.run_one(SimAlpha, "C-R", instrumentation=inst)
        return result, inst.last_profiler()

    def test_coverage_meets_the_contract(self, profiled):
        _, prof = profiled
        assert prof is not None
        # The acceptance bar: the phase table explains >=95% of the
        # measured run wall-time (laps deliver ~100%).
        assert prof.coverage >= 0.95

    def test_phases_are_the_declared_set(self, profiled):
        _, prof = profiled
        assert set(prof.phases) <= set(PHASES)
        for hot in ("fetch", "issue", "retire"):
            assert prof.phases[hot] > 0.0

    def test_components_were_wrapped(self, profiled):
        _, prof = profiled
        assert prof.components, "no PROFILE_COMPONENTS hooks fired"
        assert "fetch/icache" in prof.components
        calls = prof.component_calls["fetch/icache"]
        assert calls > 0

    def test_profiling_does_not_change_the_measurement(self, profiled):
        result, _ = profiled
        bare = Harness().run_one(SimAlpha, "C-R")
        assert result.cycles == bare.cycles
        assert result.instructions == bare.instructions

    def test_attribution_and_render_agree(self, profiled):
        _, prof = profiled
        data = prof.attribution()
        assert data["runs"] == 1
        assert data["coverage"] == pytest.approx(prof.coverage)
        table = prof.render()
        assert "hot-path attribution" in table
        for phase in data["phases"]:
            assert phase in table

    def test_disabled_instrumentation_wraps_nothing(self):
        inst = Instrumentation.disabled()
        harness = Harness()
        harness.run_one(SimAlpha, "C-R", instrumentation=inst)
        assert inst.last_profiler() is None
