"""CPI-stack accounting: classification rules and the sum identity."""

import pytest

from repro import SimAlpha
from repro.obs import Instrumentation
from repro.obs.cpistack import (
    CPI_COMPONENTS,
    CpiStackAccountant,
    cpi_stack_total,
)
from repro.validation import Harness

#: One representative per microbenchmark family (control / execute /
#: memory), as the acceptance criteria require.
REPRESENTATIVES = ("C-Ca", "C-S1", "E-I", "E-D3", "M-D", "M-L2")


class TestClassification:
    def test_quiet_instruction_is_base(self):
        accountant = CpiStackAccountant()
        assert accountant.classify(()) == "base"

    def test_memory_events_charge_memory(self):
        accountant = CpiStackAccountant()
        assert accountant.classify(("dcache_misses",)) == "memory"
        assert accountant.classify(("l2_misses",)) == "memory"
        assert accountant.classify(("dtlb_misses",)) == "memory"

    def test_fetch_events_charge_fetch(self):
        accountant = CpiStackAccountant()
        assert accountant.classify(("icache_misses",)) == "fetch"
        assert accountant.classify(("way_mispredicts",)) == "fetch"

    def test_trap_outranks_memory(self):
        accountant = CpiStackAccountant()
        cause = accountant.classify(
            ("dcache_misses", "store_replay_traps")
        )
        assert cause == "trap"

    def test_issue_stall_charges_issue(self):
        accountant = CpiStackAccountant()
        assert accountant.classify((), issue_stalled=True) == "issue"
        assert accountant.classify(("maps_stalls",)) == "issue"

    def test_mispredict_shadows_next_instruction(self):
        accountant = CpiStackAccountant()
        # The branch itself resolves normally...
        assert accountant.classify(("branch_mispredicts",)) == "base"
        # ...the redirect bubble lands on the instruction after it.
        assert accountant.classify(()) == "bubble"
        # And the shadow is consumed, not sticky.
        assert accountant.classify(()) == "base"

    def test_trap_shadow_follows_trap(self):
        accountant = CpiStackAccountant()
        assert accountant.classify(("load_order_traps",)) == "trap"
        assert accountant.classify(()) == "trap"
        assert accountant.classify(()) == "base"

    def test_current_events_outrank_stale_shadow(self):
        accountant = CpiStackAccountant()
        accountant.classify(("ras_mispredicts",))
        # A trap on the shadowed instruction wins over the bubble.
        assert accountant.classify(("mbox_traps",)) == "trap"


class TestAccounting:
    def test_cycles_partition_across_components(self):
        accountant = CpiStackAccountant()
        accountant.account(2.0, ())
        accountant.account(10.0, ("dcache_misses",))
        accountant.account(3.0, (), issue_stalled=True)
        assert accountant.cycles["base"] == 2.0
        assert accountant.cycles["memory"] == 10.0
        assert accountant.cycles["issue"] == 3.0
        assert sum(accountant.cycles.values()) == 15.0

    def test_stack_sums_to_cpi_with_residue_folded(self):
        accountant = CpiStackAccountant()
        accountant.account(7.0, ())
        # Reported cycles differ from accounted (engine's >=1 floor,
        # float residue): the difference folds into base.
        stack = accountant.stack(10.0, 4)
        assert cpi_stack_total(stack) == pytest.approx(2.5, abs=1e-12)
        assert set(stack) == set(CPI_COMPONENTS)

    def test_empty_run(self):
        stack = CpiStackAccountant().stack(0.0, 0)
        assert all(v == 0.0 for v in stack.values())


class TestOnMicrobenchmarks:
    @pytest.fixture(scope="class")
    def results(self):
        instrumentation = Instrumentation()
        harness = Harness()
        return {
            name: harness.run_one(
                SimAlpha, name, instrumentation=instrumentation
            )
            for name in REPRESENTATIVES
        }

    def test_components_sum_to_cpi(self, results):
        for name, result in results.items():
            assert result.cpi_stack is not None, name
            total = cpi_stack_total(result.cpi_stack)
            assert total == pytest.approx(result.cpi, abs=1e-6), name

    def test_stacks_cover_all_components(self, results):
        for result in results.values():
            assert tuple(result.cpi_stack) == CPI_COMPONENTS

    def test_attribution_tracks_benchmark_family(self, results):
        # Memory-bound chains show a real memory component...
        assert results["M-L2"].cpi_stack["memory"] > 1.0
        assert results["M-D"].cpi_stack["memory"] > 0.01
        # ...which the execute and control codes lack.
        assert results["E-I"].cpi_stack["memory"] < 0.01
        assert results["C-S1"].cpi_stack["memory"] < 0.01
        # Mispredict-heavy switch code pays redirect bubbles.
        assert results["C-S1"].cpi_stack["bubble"] > 0.05

    def test_uninstrumented_run_has_no_stack(self):
        result = Harness().run_one(SimAlpha, "E-I")
        assert result.cpi_stack is None
