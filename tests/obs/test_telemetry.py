"""Per-cell telemetry: probe, ledger, progress line, metrics mirror."""

import io
import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import (
    CellTelemetry,
    GridProgress,
    RunLedger,
    TelemetryProbe,
    mirror_to_metrics,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTelemetryProbe:
    def test_probe_measures_a_sleepless_interval(self):
        probe = TelemetryProbe()
        telemetry = probe.finish(1000)
        assert telemetry.wall_s >= 0.0
        assert telemetry.instructions == 1000
        assert telemetry.kips > 0.0
        assert telemetry.max_rss_kb > 0
        assert telemetry.pid > 0

    def test_kips_is_instructions_per_wall_ms(self):
        probe = TelemetryProbe()
        telemetry = probe.finish(5000)
        assert telemetry.kips == pytest.approx(
            telemetry.instructions / telemetry.wall_s / 1e3
        )

    def test_round_trip_through_dict(self):
        telemetry = CellTelemetry(
            wall_s=1.5, user_s=1.0, sys_s=0.25, max_rss_kb=4096,
            instructions=48000, kips=32.0, pid=99,
        )
        assert CellTelemetry.from_dict(telemetry.to_dict()) == telemetry

    def test_from_dict_ignores_unknown_keys(self):
        payload = CellTelemetry(wall_s=1.0).to_dict()
        payload["future_field"] = "whatever"
        assert CellTelemetry.from_dict(payload).wall_s == 1.0


class TestRunLedger:
    def test_header_then_one_line_per_record(self, tmp_path):
        path = tmp_path / "run.ledger.jsonl"
        with RunLedger(path, clock=lambda: 123.0) as ledger:
            ledger.record(simulator="sim-alpha", workload="C-R",
                          status="ok",
                          telemetry=CellTelemetry(wall_s=0.5, kips=10.0))
            ledger.record(simulator="sim-alpha", workload="M-D",
                          status="stuck")
            assert ledger.records == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"type": "header",
                            "format": RunLedger.FORMAT}
        assert lines[1]["status"] == "ok"
        assert lines[1]["ts"] == 123.0
        assert lines[1]["telemetry"]["wall_s"] == 0.5
        assert lines[2]["workload"] == "M-D"
        assert "telemetry" not in lines[2]

    def test_reopening_appends_without_second_header(self, tmp_path):
        path = tmp_path / "run.ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.record(simulator="a", workload="w", status="ok")
        with RunLedger(path) as ledger:
            ledger.record(simulator="b", workload="w", status="ok")
        lines = path.read_text().splitlines()
        headers = [line for line in lines if "header" in line]
        assert len(headers) == 1
        assert len(lines) == 3

    def test_source_and_attempts_are_recorded(self, tmp_path):
        path = tmp_path / "run.ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.record(simulator="a", workload="w", status="ok",
                          source="cache", attempts=3)
        cell = json.loads(path.read_text().splitlines()[1])
        assert cell["source"] == "cache"
        assert cell["attempts"] == 3

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        with RunLedger(path):
            pass
        assert path.exists()


class TestGridProgress:
    def test_line_reports_done_rate_and_eta(self):
        clock = FakeClock()
        stream = io.StringIO()
        progress = GridProgress(10, stream=stream, clock=clock)
        clock.now = 2.0
        progress.update(4)
        assert "cells 4/10" in progress.line()
        assert "2.0 cells/s" in progress.line()
        assert "ETA 3s" in progress.line()

    def test_unknown_eta_before_first_cell(self):
        progress = GridProgress(5, stream=io.StringIO(), clock=FakeClock())
        assert "ETA ?" in progress.line()

    def test_updates_are_throttled_but_final_always_prints(self):
        clock = FakeClock()
        stream = io.StringIO()
        progress = GridProgress(
            100, stream=stream, clock=clock, min_interval_s=10.0
        )
        clock.now = 1.0
        for _ in range(99):
            progress.update()  # all inside one throttle window
        assert stream.getvalue().count("\r") == 1
        progress.update()  # the 100th is final: always rendered
        assert stream.getvalue().count("\r") == 2
        progress.close()
        assert stream.getvalue().endswith("\n")

    def test_close_without_output_writes_nothing(self):
        stream = io.StringIO()
        GridProgress(5, stream=stream, clock=FakeClock()).close()
        assert stream.getvalue() == ""


class TestMirrorToMetrics:
    def test_telemetry_lands_under_the_telemetry_prefix(self):
        registry = MetricsRegistry()
        telemetry = CellTelemetry(
            wall_s=2.0, user_s=1.5, sys_s=0.5, max_rss_kb=1024,
            instructions=4000, kips=2.0, pid=1,
        )
        mirror_to_metrics(registry, "sim-alpha", "C-R", telemetry)
        key = "sim-alpha.C-R"
        assert registry.timer(f"telemetry.cell_wall.{key}").total == 2.0
        assert registry.timer(f"telemetry.cell_cpu.{key}").total == 2.0
        assert registry.gauge(f"telemetry.kips.{key}").value == 2.0
        assert registry.gauge(f"telemetry.max_rss_kb.{key}").value == 1024
        assert (
            registry.counter(f"telemetry.instructions.{key}").value == 4000
        )
        assert registry.counter("telemetry.cells").value == 1

    def test_none_telemetry_is_a_noop(self):
        registry = MetricsRegistry()
        mirror_to_metrics(registry, "sim-alpha", "C-R", None)
        assert registry.counter("telemetry.cells").value == 0
