"""Counter/gauge/timer semantics and the zero-cost disabled mode."""

import json

from repro.obs.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_TIMER,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_identity_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x") is not registry.counter("y")

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_timer_accumulates(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        timer.observe(0.25)
        timer.observe(0.75)
        assert timer.total == 1.0
        assert timer.count == 2
        assert timer.mean == 0.5

    def test_timer_context_manager_measures(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total >= 0.0

    def test_empty_timer_mean(self):
        assert MetricsRegistry().timer("t").mean == 0.0


class TestDisabledMode:
    def test_disabled_returns_shared_nulls(self):
        registry = MetricsRegistry.disabled()
        assert registry.counter("a") is NULL_COUNTER
        assert registry.gauge("a") is NULL_GAUGE
        assert registry.timer("a") is NULL_TIMER

    def test_null_instruments_record_nothing(self):
        registry = MetricsRegistry.disabled()
        registry.counter("a").inc(100)
        registry.gauge("a").set(9.0)
        registry.timer("a").observe(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_TIMER.total == 0.0

    def test_disabled_registry_stays_empty(self):
        registry = MetricsRegistry.disabled()
        registry.counter("a").inc()
        assert list(registry) == []
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "timers": {},
        }


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(2)
        registry.gauge("depth").set(7.0)
        registry.timer("cell").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"runs": 2}
        assert snap["gauges"] == {"depth": 7.0}
        assert snap["timers"]["cell"] == {
            "total_s": 0.5, "count": 1, "mean_s": 0.5,
        }

    def test_iteration_lists_names(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.timer("t")
        assert set(registry) == {"c", "t"}

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        path = tmp_path / "metrics.json"
        registry.write_json(str(path), extra={"kind": "test"})
        payload = json.loads(path.read_text())
        assert payload["counters"] == {"runs": 1}
        assert payload["meta"] == {"kind": "test"}
