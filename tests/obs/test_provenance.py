"""Config hashing and provenance capture/round-trip."""

from dataclasses import dataclass, replace

from repro.core.config import MachineConfig
from repro.obs import provenance
from repro.obs.provenance import (
    RunProvenance,
    capture_provenance,
    config_hash,
)


@dataclass(frozen=True)
class TinyConfig:
    value: int


class TestConfigHash:
    def test_same_instance_is_stable(self):
        config = MachineConfig()
        assert config_hash(config) == config_hash(config)

    def test_equal_configs_hash_equal(self):
        assert config_hash(MachineConfig()) == config_hash(MachineConfig())

    def test_different_configs_hash_differently(self):
        base = MachineConfig()
        tweaked = replace(base, rob_size=64)
        assert config_hash(base) != config_hash(tweaked)

    def test_renaming_changes_hash(self):
        # The name is part of identity: sim-initial and sim-alpha must
        # never be conflated even if parameters collide.
        assert config_hash(MachineConfig(name="a")) != config_hash(
            MachineConfig(name="b")
        )

    def test_none_config(self):
        assert config_hash(None) == "none"

    def test_hash_is_short_hex(self):
        digest = config_hash(MachineConfig())
        assert len(digest) == 16
        int(digest, 16)  # raises if not hex


class TestHashCacheEviction:
    def test_eviction_is_oldest_first_not_wholesale(self):
        """Overflowing the memo must evict only the oldest entry; the
        configs a running grid is actively hashing keep their memos."""
        provenance._HASH_CACHE.clear()
        anchor = MachineConfig()
        config_hash(anchor)
        flood = [
            TinyConfig(value)
            for value in range(provenance._HASH_CACHE_LIMIT - 1)
        ]
        for config in flood:
            config_hash(config)
        assert id(anchor) in provenance._HASH_CACHE
        assert len(provenance._HASH_CACHE) == provenance._HASH_CACHE_LIMIT

        config_hash(TinyConfig(-1))
        assert id(anchor) not in provenance._HASH_CACHE
        assert id(flood[0]) in provenance._HASH_CACHE
        assert id(flood[-1]) in provenance._HASH_CACHE
        assert len(provenance._HASH_CACHE) == provenance._HASH_CACHE_LIMIT

    def test_structurally_equal_configs_hash_equal_after_eviction(self):
        """The digest is content-addressed: a structurally equal config
        rebuilt after its twin was evicted must hash identically."""
        provenance._HASH_CACHE.clear()
        baseline = config_hash(MachineConfig())
        for value in range(provenance._HASH_CACHE_LIMIT + 64):
            config_hash(TinyConfig(value))
        assert len(provenance._HASH_CACHE) <= provenance._HASH_CACHE_LIMIT
        assert config_hash(MachineConfig()) == baseline


class TestCaptureProvenance:
    def test_fields_populated(self):
        provenance = capture_provenance(MachineConfig(name="sim-alpha"))
        assert provenance.config_name == "sim-alpha"
        assert provenance.config_hash == config_hash(MachineConfig())
        assert provenance.package_version
        assert provenance.created.startswith("20")
        assert provenance.host
        assert provenance.python

    def test_dict_round_trip(self):
        provenance = capture_provenance(MachineConfig())
        clone = RunProvenance.from_dict(provenance.to_dict())
        assert clone == provenance

    def test_from_dict_ignores_unknown_keys(self):
        provenance = RunProvenance.from_dict(
            {"config_hash": "abc", "someday_field": 1}
        )
        assert provenance.config_hash == "abc"


class TestAttachment:
    def test_sim_alpha_attaches_provenance(self):
        from repro import SimAlpha
        from repro.validation import Harness

        result = Harness().run_one(SimAlpha, "E-I")
        assert result.provenance is not None
        assert result.provenance.config_name == "sim-alpha"
        assert result.provenance.config_hash == config_hash(
            SimAlpha().config
        )

    def test_native_machine_keeps_provenance_through_dcpi(self):
        from repro.simulators import NativeMachine
        from repro.validation import Harness

        result = Harness().run_one(NativeMachine, "E-I")
        assert result.provenance is not None
        assert result.provenance.config_name == "DS-10L"
