"""Tests for the SDRAM timing model and its configuration space."""

import pytest

from repro.dram.config import DS10L_CALIBRATED, DramConfig, parameter_grid
from repro.dram.sdram import Sdram


class TestConfig:
    def test_calibrated_matches_paper(self):
        assert DS10L_CALIBRATED.page_policy == "open"
        assert DS10L_CALIBRATED.ras_cycles == 2
        assert DS10L_CALIBRATED.cas_cycles == 4
        assert DS10L_CALIBRATED.precharge_cycles == 2
        assert DS10L_CALIBRATED.controller_cycles == 2

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            DramConfig(page_policy="half-open")

    def test_rejects_bad_banks(self):
        with pytest.raises(ValueError):
            DramConfig(banks=3)

    def test_parameter_grid_contains_winner(self):
        grid = list(parameter_grid())
        assert DS10L_CALIBRATED in grid

    def test_grid_size(self):
        grid = list(parameter_grid())
        assert len(grid) == 2 * 3 * 4 * 3 * 3

    def test_with_policy(self):
        closed = DS10L_CALIBRATED.with_policy("closed")
        assert closed.page_policy == "closed"
        assert closed.ras_cycles == DS10L_CALIBRATED.ras_cycles


class TestOpenPagePolicy:
    def test_row_hit_cheaper_than_row_miss(self):
        dram = Sdram(DramConfig(page_policy="open"))
        first = dram.access(0.0, 0x0)          # cold activate
        hit = dram.access(1000.0, 0x40)        # same row
        miss = dram.access(2000.0, 0x100000)   # same bank? ensure far row
        hit_latency = hit - 1000.0
        assert hit_latency < first - 0.0 or dram.stats.row_hits >= 1
        assert dram.stats.row_hits == 1

    def test_row_hit_latency_is_cas_only(self):
        config = DramConfig(page_policy="open")
        dram = Sdram(config)
        dram.access(0.0, 0x0)
        hit = dram.access(1000.0, 0x40)
        scale = config.cpu_cycles_per_dram_cycle
        expected = 1000.0 + (config.cas_cycles + config.controller_cycles) * scale
        assert hit == expected

    def test_conflict_row_pays_precharge(self):
        config = DramConfig(page_policy="open", banks=1)
        dram = Sdram(config)
        dram.access(0.0, 0x0)
        far = dram.access(1000.0, 0x10000)  # different row, same bank
        scale = config.cpu_cycles_per_dram_cycle
        expected = 1000.0 + (
            config.precharge_cycles + config.ras_cycles + config.cas_cycles
            + config.controller_cycles
        ) * scale
        assert far == expected


class TestClosedPagePolicy:
    def test_every_access_pays_ras_cas(self):
        config = DramConfig(page_policy="closed")
        dram = Sdram(config)
        dram.access(0.0, 0x0)
        second = dram.access(1000.0, 0x40)  # same row: no benefit
        scale = config.cpu_cycles_per_dram_cycle
        expected = 1000.0 + (
            config.ras_cycles + config.cas_cycles + config.controller_cycles
        ) * scale
        assert second == expected
        assert dram.stats.row_hits == 0

    def test_back_to_back_same_bank_sees_precharge(self):
        config = DramConfig(page_policy="closed", banks=1)
        dram = Sdram(config)
        first = dram.access(0.0, 0x0)
        second = dram.access(first - 1, 0x40)  # bank still precharging
        assert second > first


class TestPrechargeAccounting:
    def test_open_page_precharges_only_on_row_conflict(self):
        dram = Sdram(DramConfig(page_policy="open", banks=1))
        dram.access(0.0, 0x0)        # cold activate: no precharge
        dram.access(1000.0, 0x40)    # row hit: no precharge
        dram.access(2000.0, 0x10000)  # conflicting row: precharge
        assert dram.stats.precharges == 1
        assert dram.stats.precharges <= dram.stats.row_misses

    def test_closed_page_precharges_every_access(self):
        dram = Sdram(DramConfig(page_policy="closed"))
        for i in range(5):
            dram.access(i * 1000.0, i * 64)
        assert dram.stats.precharges == dram.stats.accesses == 5

    def test_row_counters_partition_accesses(self):
        dram = Sdram(DramConfig(page_policy="open"))
        for i in range(32):
            dram.access(i * 100.0, (i * 0x2040) & 0xFFFFF)
        stats = dram.stats
        assert stats.row_hits + stats.row_misses == stats.accesses
        assert 0.0 <= stats.row_hit_rate <= 1.0


class TestBanking:
    def test_bank_conflicts_counted(self):
        config = DramConfig(banks=1)
        dram = Sdram(config)
        dram.access(0.0, 0x0)
        dram.access(0.0, 0x100000)
        assert dram.stats.bank_conflicts == 1

    def test_banks_operate_in_parallel(self):
        config = DramConfig(banks=4)
        dram = Sdram(config)
        row = config.row_bytes
        # Rows 0..3 interleave across the four banks.
        times = [dram.access(0.0, i * row) for i in range(4)]
        assert dram.stats.bank_conflicts == 0

    def test_reset(self):
        dram = Sdram()
        dram.access(0.0, 0x0)
        dram.reset()
        assert dram.stats.accesses == 0


def test_block_transfer_cycles_positive():
    dram = Sdram()
    assert dram.block_transfer_cycles() > 0
