"""Golden-number regression locks.

The whole stack — workload generation, functional execution, every
predictor, the memory hierarchy, DRAM, the pipeline engines, DCPI
measurement — is deterministic.  These exact cycle counts pin the
current model: any change to timing behaviour anywhere shows up here
first, on purpose.  If a deliberate model change moves them, regenerate
with the snippet in this file's docstring-footer and re-justify the
EXPERIMENTS.md shapes.

Regenerate::

    python - <<'PY'
    from repro.validation.harness import Harness
    from repro.core import SimAlpha, make_sim_initial, make_sim_stripped
    from repro.simulators import (SimOutOrder, NativeMachine,
                                  EightWaySim)
    h = Harness()
    for factory, wl in [(SimAlpha, "C-Ca"), ...]:
        r = h.run_one(factory, wl)
        print(r.simulator, wl, r.cycles)
    PY
"""

import pytest

from repro.core import SimAlpha, make_sim_initial, make_sim_stripped
from repro.simulators import EightWaySim, NativeMachine, SimOutOrder
from repro.validation.harness import Harness

_FACTORIES = {
    "sim-alpha": SimAlpha,
    "sim-initial": make_sim_initial,
    "sim-stripped": make_sim_stripped,
    "sim-outorder": SimOutOrder,
    "DS-10L": NativeMachine,
    "8-way-inhouse": EightWaySim,
}

#: (simulator name, workload, exact cycles)
GOLDEN = [
    ("sim-alpha", "C-Ca", 13615.0),
    ("sim-alpha", "E-D3", 12930.0),
    ("sim-alpha", "M-D", 31551.0),
    ("sim-alpha", "gzip", 52986.0),
    ("sim-initial", "C-Ca", 22638.0),
    ("sim-stripped", "eon", 62066.0),
    ("sim-outorder", "E-I", 12992.0),
    ("DS-10L", "mesa", 36756.15654443807),
    ("8-way-inhouse", "go", 10092.0),
]


@pytest.fixture(scope="module")
def harness():
    return Harness()


@pytest.mark.parametrize(
    "simulator,workload,cycles",
    GOLDEN,
    ids=[f"{s}-{w}" for s, w, _ in GOLDEN],
)
def test_golden_cycles(harness, simulator, workload, cycles):
    result = harness.run_one(_FACTORIES[simulator], workload)
    assert result.cycles == pytest.approx(cycles, abs=1e-6), (
        f"{simulator} on {workload} moved: {result.cycles} vs golden "
        f"{cycles}.  If this change is intentional, regenerate the "
        f"GOLDEN table (see module docstring) and re-check the "
        f"EXPERIMENTS.md shapes."
    )
