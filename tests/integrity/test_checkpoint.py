"""Grid checkpoint/resume: atomic journals and interrupted grids."""

import json
import os

import pytest

from repro import SimAlpha
from repro.integrity.checkpoint import GridCheckpoint
from repro.exec.spec import RunOptions
from repro.result import SimResult
from repro.validation.harness import Harness, ResultGrid


def make_result(sim="sim-alpha", workload="C-R"):
    return SimResult(sim, workload, cycles=100.0, instructions=50)


class TestJournal:
    def test_record_flush_load_round_trip(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        checkpoint = GridCheckpoint(path)
        checkpoint.record("abc123", make_result())
        restored = GridCheckpoint(path).load()
        assert set(restored) == {"abc123"}
        assert restored["abc123"].cycles == 100.0

    def test_missing_file_is_empty(self, tmp_path):
        checkpoint = GridCheckpoint(tmp_path / "nope.ckpt")
        assert checkpoint.load() == {}
        assert checkpoint.get("anything") is None

    def test_corrupt_file_raises_not_discards(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        path.write_text("{truncated", encoding="utf-8")
        with pytest.raises(ValueError) as excinfo:
            GridCheckpoint(path).load()
        assert "corrupt" in str(excinfo.value)

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(ValueError):
            GridCheckpoint(path).load()

    def test_every_n_batches_flushes(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        checkpoint = GridCheckpoint(path, every=3)
        checkpoint.record("a", make_result(workload="C-R"))
        checkpoint.record("b", make_result(workload="E-I"))
        assert not os.path.exists(path)  # below the batch threshold
        checkpoint.record("c", make_result(workload="M-D"))
        assert os.path.exists(path)
        assert len(GridCheckpoint(path).load()) == 3

    def test_flush_merges_with_concurrent_writer(self, tmp_path):
        """Two journals over the same path extend each other rather
        than clobbering."""
        path = tmp_path / "grid.ckpt"
        first = GridCheckpoint(path)
        second = GridCheckpoint(path)
        first.record("a", make_result(workload="C-R"))
        second.record("b", make_result(workload="E-I"))
        merged = GridCheckpoint(path).load()
        assert set(merged) == {"a", "b"}

    def test_no_temp_droppings(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        checkpoint = GridCheckpoint(path)
        for index in range(5):
            checkpoint.record(f"d{index}", make_result())
        leftovers = [
            name for name in os.listdir(tmp_path) if name != "grid.ckpt"
        ]
        assert leftovers == []

    def test_journal_is_always_valid_json(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        checkpoint = GridCheckpoint(path)
        for index in range(3):
            checkpoint.record(f"d{index}", make_result())
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert payload["format"] == GridCheckpoint.FORMAT
            assert len(payload["cells"]) == index + 1


class TestGC:
    def test_age_pass_prunes_only_old_entries(self, tmp_path):
        checkpoint = GridCheckpoint(tmp_path / "grid.ckpt")
        checkpoint.record("old", make_result(workload="C-R"))
        checkpoint.record("new", make_result(workload="E-I"))
        checkpoint._recorded["old"] -= 3600.0
        pruned = checkpoint.gc(max_age_s=600.0)
        assert pruned == ["old"]
        assert set(GridCheckpoint(tmp_path / "grid.ckpt").load()) == {
            "new"
        }

    def test_live_set_pass_sheds_stale_digests(self, tmp_path):
        checkpoint = GridCheckpoint(tmp_path / "grid.ckpt")
        for digest in ("a", "b", "c"):
            checkpoint.record(digest, make_result())
        pruned = checkpoint.gc(live={"b"})
        assert pruned == ["a", "c"]
        assert set(GridCheckpoint(tmp_path / "grid.ckpt").load()) == {
            "b"
        }

    def test_no_criteria_is_a_rewrite_not_a_wipe(self, tmp_path):
        checkpoint = GridCheckpoint(tmp_path / "grid.ckpt")
        checkpoint.record("a", make_result())
        assert checkpoint.gc() == []
        assert len(GridCheckpoint(tmp_path / "grid.ckpt").load()) == 1

    def test_pruned_entries_stay_out_despite_merge(self, tmp_path):
        """gc must not merge the pruned entries straight back in from
        the on-disk copy it just read."""
        path = tmp_path / "grid.ckpt"
        checkpoint = GridCheckpoint(path)
        checkpoint.record("a", make_result())
        checkpoint.record("b", make_result())
        fresh = GridCheckpoint(path)
        fresh.gc(live={"a"})
        assert set(GridCheckpoint(path).load()) == {"a"}

    def test_gc_preserves_concurrent_journal_entries(self, tmp_path):
        """gc's rewrite must merge cells another run journalled after
        our last read instead of clobbering them (flushing the stale
        in-memory view used to drop the concurrent cell silently)."""
        path = tmp_path / "grid.ckpt"
        mine = GridCheckpoint(path)
        mine.record("a", make_result())
        mine.load()
        other = GridCheckpoint(path)
        other.record("b", make_result())
        pruned = mine.gc(max_age_s=3600.0)
        assert pruned == []
        assert set(GridCheckpoint(path).load()) == {"a", "b"}

    def test_empty_live_set_prunes_every_entry(self, tmp_path):
        """An explicitly empty live set means nothing is live."""
        path = tmp_path / "grid.ckpt"
        checkpoint = GridCheckpoint(path)
        checkpoint.record("a", make_result())
        checkpoint.record("b", make_result())
        pruned = GridCheckpoint(path).gc(live=set())
        assert pruned == ["a", "b"]
        assert GridCheckpoint(path).load() == {}

    def test_v1_journal_loads_and_upgrades(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        payload = {
            "format": GridCheckpoint.FORMAT_V1,
            "cells": {"legacy": make_result().to_dict()},
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        checkpoint = GridCheckpoint(path)
        assert set(checkpoint.load()) == {"legacy"}
        # Pre-timestamp entries count as freshly recorded: an age pass
        # must not destroy them.
        assert checkpoint.gc(max_age_s=60.0) == []
        upgraded = json.loads(path.read_text(encoding="utf-8"))
        assert upgraded["format"] == GridCheckpoint.FORMAT
        assert "recorded" in upgraded["cells"]["legacy"]

    def test_pruned_journal_resumes_byte_identical(self, tmp_path):
        """GC half the journal, resume the grid: the recomputed cells
        must reproduce the uninterrupted serialisation exactly."""
        path = tmp_path / "grid.ckpt"
        uninterrupted = Harness().run_grid(
            [SimAlpha], ["C-Ca", "E-I"],
            RunOptions(checkpoint=GridCheckpoint(path)),
        )

        checkpoint = GridCheckpoint(path)
        full = checkpoint.load()
        survivor = sorted(full)[0]
        pruned = checkpoint.gc(live={survivor})
        assert len(pruned) == len(full) - 1

        resumed = Harness().run_grid(
            [SimAlpha], ["C-Ca", "E-I"],
            RunOptions(checkpoint=GridCheckpoint(path), resume=True),
        )
        assert resumed.to_json(canonical=True) == \
            uninterrupted.to_json(canonical=True)


class TestResume:
    WORKLOADS = ["C-Ca", "E-I"]

    def test_interrupted_grid_resumes_byte_identical(self, tmp_path):
        """Kill a grid midway (simulated by journalling only some
        cells), resume it, and require the canonical serialisation to
        match an uninterrupted run exactly."""
        path = tmp_path / "grid.ckpt"

        uninterrupted = Harness().run_grid(
            [SimAlpha], self.WORKLOADS,
            RunOptions(checkpoint=GridCheckpoint(tmp_path / "full.ckpt")),
        )

        # The "interrupted" journal holds only the first cell.
        full = GridCheckpoint(tmp_path / "full.ckpt").load()
        partial = GridCheckpoint(path)
        digest, result = sorted(full.items())[0]
        partial.record(digest, result)

        resumed = Harness().run_grid(
            [SimAlpha], self.WORKLOADS,
            RunOptions(checkpoint=GridCheckpoint(path), resume=True),
        )
        assert resumed.to_json(canonical=True) == \
            uninterrupted.to_json(canonical=True)

    def test_resume_skips_completed_cells(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        harness = Harness()
        harness.run_grid(
            [SimAlpha], self.WORKLOADS,
            RunOptions(checkpoint=GridCheckpoint(path)),
        )

        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        resumed_harness = Harness(metrics=registry)
        grid = resumed_harness.run_grid(
            [SimAlpha], self.WORKLOADS,
            RunOptions(checkpoint=GridCheckpoint(path), resume=True),
        )
        assert sorted(grid.workloads()) == sorted(self.WORKLOADS)
        snap = registry.snapshot()
        assert snap["counters"]["exec.checkpoint.resumed"] == \
            len(self.WORKLOADS)

    def test_without_resume_flag_cells_recompute(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        harness = Harness()
        harness.run_grid(
            [SimAlpha], ["C-Ca"],
            RunOptions(checkpoint=GridCheckpoint(path)),
        )

        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        grid = Harness(metrics=registry).run_grid(
            [SimAlpha], ["C-Ca"],
            RunOptions(checkpoint=GridCheckpoint(path)),
        )
        assert grid.workloads() == ["C-Ca"]
        snap = registry.snapshot()
        assert "exec.checkpoint.resumed" not in snap["counters"]

    def test_harness_level_checkpoint_defaults(self, tmp_path):
        """The CLI configures checkpoint/resume on the harness; grids
        run without explicit arguments must still journal."""
        path = tmp_path / "grid.ckpt"
        harness = Harness(
            options=RunOptions(checkpoint=str(path), resume=True)
        )
        harness.run_grid([SimAlpha], ["C-Ca"])
        assert len(GridCheckpoint(path).load()) == 1


class TestShardJournalMerge:
    """merge_from: shard journals combine by digest — identical
    payloads dedup, conflicting payloads must raise."""

    def _journal(self, path, entries):
        checkpoint = GridCheckpoint(path)
        for digest, result in entries:
            checkpoint.record(digest, result)
        checkpoint.flush()
        return checkpoint

    def test_merge_disjoint_journals_unions_entries(self, tmp_path):
        main = self._journal(
            tmp_path / "a.ckpt", [("d1", make_result(workload="C-R"))]
        )
        self._journal(
            tmp_path / "b.ckpt", [("d2", make_result(workload="E-I"))]
        )
        added = main.merge_from(tmp_path / "b.ckpt")
        assert added == 1
        main.flush()
        assert set(GridCheckpoint(tmp_path / "a.ckpt").load()) == \
            {"d1", "d2"}

    def test_same_digest_identical_payload_dedups(self, tmp_path):
        """Two shards that both computed a cell (a stolen lease whose
        first owner survived) merge without complaint or duplication."""
        result = make_result()
        main = self._journal(tmp_path / "a.ckpt", [("d1", result)])
        self._journal(tmp_path / "b.ckpt", [("d1", make_result())])
        assert main.merge_from(tmp_path / "b.ckpt") == 0
        assert len(main) == 1

    def test_same_digest_volatile_fields_still_dedup(self, tmp_path):
        """Honest recomputes differ in volatile provenance (created,
        host) and telemetry; the merge compares canonically and must
        treat them as the same measurement."""
        from repro.obs.provenance import RunProvenance
        from repro.obs.telemetry import CellTelemetry

        first = make_result()
        first.provenance = RunProvenance(
            config_hash="c1", created="2026-01-01T00:00:00Z",
            host="host-a",
        )
        first.telemetry = CellTelemetry(wall_s=1.0)
        second = make_result()
        second.provenance = RunProvenance(
            config_hash="c1", created="2026-02-02T02:02:02Z",
            host="host-b",
        )
        second.telemetry = CellTelemetry(wall_s=9.0)
        main = self._journal(tmp_path / "a.ckpt", [("d1", first)])
        self._journal(tmp_path / "b.ckpt", [("d1", second)])
        assert main.merge_from(tmp_path / "b.ckpt") == 0
        assert len(main) == 1

    def test_same_digest_conflicting_payload_raises(self, tmp_path):
        """A digest collision with different measurements is corruption
        or broken determinism: the merge must raise, never
        last-write-win."""
        from repro.integrity.checkpoint import CheckpointConflict

        main = self._journal(tmp_path / "a.ckpt", [("d1", make_result())])
        conflicting = SimResult(
            "sim-alpha", "C-R", cycles=999.0, instructions=50
        )
        self._journal(tmp_path / "b.ckpt", [("d1", conflicting)])
        with pytest.raises(CheckpointConflict):
            main.merge_from(tmp_path / "b.ckpt")
        # And the surviving entry is the original, untouched.
        assert main.load()["d1"].cycles == 100.0

    def test_load_detects_on_disk_conflict(self, tmp_path):
        """The same refusal applies when the conflict is between
        memory and disk (a concurrent writer went insane)."""
        from repro.integrity.checkpoint import CheckpointConflict

        path = tmp_path / "grid.ckpt"
        self._journal(path, [("d1", make_result())])
        mine = GridCheckpoint(path, every=10)  # defer the flush
        mine.record("d1", SimResult(
            "sim-alpha", "C-R", cycles=777.0, instructions=50
        ))
        with pytest.raises(CheckpointConflict):
            mine.load()


class TestDurability:
    def test_record_fsyncs_before_returning(self, tmp_path, monkeypatch):
        """A recorded cell must be durable (file fsync + rename +
        directory fsync) before record() returns — the shard runner
        acknowledges the cell to the coordinator immediately after,
        and an acknowledged cell must survive power loss."""
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        path = tmp_path / "grid.ckpt"
        GridCheckpoint(path).record("d1", make_result())
        # One fsync for the journal temp file, one for the directory.
        assert len(synced) >= 2
        assert len(GridCheckpoint(path).load()) == 1

    def test_record_with_batching_defers_fsync(self, tmp_path,
                                               monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        checkpoint = GridCheckpoint(tmp_path / "grid.ckpt", every=2)
        checkpoint.record("d1", make_result())
        assert synced == []  # below threshold: nothing durable yet
        checkpoint.record("d2", make_result(workload="E-I"))
        assert len(synced) >= 2
