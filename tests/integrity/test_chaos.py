"""Chaos harness: the sharded execution fabric under induced failure.

Each scenario asserts the ISSUE's invariant: every run ends complete
and byte-identical to the serial baseline (or with diagnosable
failures) — never a hang, never silent loss, never a double-count.
"""

import multiprocessing
from collections import deque

import pytest

from repro.integrity.chaos import (
    CHAOS_SCENARIOS,
    ChaosReport,
    ChaosTransport,
    run_chaos_scenario,
)
from repro.exec.shard import Transport

fork_available = "fork" in multiprocessing.get_all_start_methods()

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(
        not fork_available,
        reason="sharded execution requires the fork start method",
    ),
]


class _LoopbackTransport(Transport):
    """In-memory transport: everything sent is received in order."""

    def __init__(self):
        self.queue = deque()

    def send(self, message):
        self.queue.append(message)

    def recv(self, timeout=None):
        return self.queue.popleft() if self.queue else None

    def poll(self, timeout=0.0):
        return bool(self.queue)

    def close(self):
        self.queue.clear()


class TestChaosTransport:
    def test_drop_every_n_send(self):
        inner = _LoopbackTransport()
        chaos = ChaosTransport(inner, drop_every=3)
        for index in range(6):
            chaos.send(("message", index))
        assert [m[1] for m in inner.queue] == [0, 1, 3, 4]
        assert chaos.dropped == 2

    def test_drop_every_n_recv_looks_like_timeout(self):
        inner = _LoopbackTransport()
        chaos = ChaosTransport(inner, drop_every=2)
        inner.send(("a",))
        inner.send(("b",))
        assert chaos.recv() == ("a",)
        assert chaos.recv() is None  # dropped, indistinguishable
        assert chaos.dropped == 1

    def test_duplicate_surfaces_through_pending(self):
        """Duplicates are queued inside the transport — exactly what a
        selector cannot see — and must be visible via pending()."""
        inner = _LoopbackTransport()
        chaos = ChaosTransport(inner, duplicate_every=2)
        inner.send(("a",))
        inner.send(("b",))
        assert chaos.recv() == ("a",)
        assert not chaos.pending()
        assert chaos.recv() == ("b",)
        assert chaos.pending()
        assert chaos.poll()
        assert chaos.recv() == ("b",)  # the queued duplicate
        assert not chaos.pending()
        assert chaos.duplicated == 1

    def test_queued_duplicates_do_not_recount(self):
        """Draining a duplicate must not advance the chaos counters —
        otherwise chaos compounds on its own artifacts."""
        inner = _LoopbackTransport()
        chaos = ChaosTransport(inner, duplicate_every=1)
        inner.send(("a",))
        assert chaos.recv() == ("a",)
        assert chaos.recv() == ("a",)
        assert chaos.duplicated == 1
        assert chaos.received == 1

    def test_delay_counts(self, monkeypatch):
        import repro.integrity.chaos as chaos_module

        naps = []
        monkeypatch.setattr(
            chaos_module.time, "sleep", lambda s: naps.append(s)
        )
        inner = _LoopbackTransport()
        chaos = ChaosTransport(inner, delay_every=2, delay_s=0.5)
        chaos.send(("a",))
        chaos.send(("b",))
        assert naps == [0.5]
        assert chaos.delayed == 1


class TestScenarioRegistry:
    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            run_chaos_scenario("no-such-scenario")

    def test_registry_covers_the_required_failure_classes(self):
        required = {
            "runner-sigkill", "coordinator-kill", "journal-corruption",
            "message-drop", "message-duplicate", "message-delay",
        }
        assert required <= set(CHAOS_SCENARIOS)

    def test_empty_report_is_not_a_pass(self):
        assert not ChaosReport(outcomes=[]).all_passed


def _assert_passed(outcome):
    assert outcome.byte_identical, (
        f"{outcome.scenario} diverged: {outcome.detail}"
    )
    assert outcome.passed, f"{outcome.scenario}: {outcome.detail}"


class TestScenarios:
    """Each scenario must end byte-identical with the right recovery
    evidence in the counters (the scenario's own checks)."""

    def test_clean_control(self):
        _assert_passed(run_chaos_scenario("clean-control"))

    def test_message_drop(self):
        _assert_passed(run_chaos_scenario("message-drop"))

    def test_message_duplicate(self):
        outcome = run_chaos_scenario("message-duplicate")
        _assert_passed(outcome)
        assert outcome.counters.get("shard.cells.deduped", 0) >= 1

    def test_runner_sigkill(self):
        outcome = run_chaos_scenario("runner-sigkill")
        _assert_passed(outcome)
        assert outcome.counters.get("shard.runners.lost", 0) >= 1

    def test_journal_corruption(self):
        outcome = run_chaos_scenario("journal-corruption")
        _assert_passed(outcome)
        assert outcome.counters.get("shard.journals.corrupt", 0) >= 1

    def test_coordinator_kill_resumes_without_recompute(self):
        outcome = run_chaos_scenario("coordinator-kill")
        _assert_passed(outcome)
        recovered = outcome.counters.get("shard.cells.recovered", 0)
        computed = outcome.counters.get("shard.cells.computed", 0)
        assert recovered >= 1
        assert recovered + computed == 8  # every cell, exactly once
