"""Unit tests for the invariant sanitizers."""

import math

import pytest

from repro.integrity.sanitizers import (
    DEFAULT_IPC_BOUND,
    INVARIANTS,
    IntegrityError,
    InvariantViolation,
    RunSanitizer,
    Sanitizers,
)
from repro.result import RunStats, SimResult


def make_result(cycles=100.0, instructions=50, **kwargs):
    return SimResult(
        "sim-alpha", "C-R", cycles=cycles, instructions=instructions,
        **kwargs,
    )


class TestCommitChecks:
    def test_monotonic_retire_is_clean(self):
        sanitizer = RunSanitizer(window=1)
        for retire in (1.0, 2.0, 2.0, 5.0):
            sanitizer.on_commit(0.0, 0.0, 0.0, retire, retire)
        assert sanitizer.violations == []

    def test_retire_regression_is_caught(self):
        sanitizer = RunSanitizer()
        sanitizer.on_commit(0.0, 0.0, 0.0, 10.0, 10.0)
        sanitizer.on_commit(0.0, 0.0, 0.0, 4.0, 4.0, pc=0x120)
        [violation] = sanitizer.violations
        assert violation.invariant == "cycle_monotonicity"
        assert "0x120" in violation.message

    def test_nan_retire_is_caught(self):
        """NaN compares false with everything; the negated comparison
        must still flag it."""
        sanitizer = RunSanitizer()
        sanitizer.on_commit(0.0, 0.0, 0.0, 10.0, 10.0)
        sanitizer.on_commit(0.0, 0.0, 0.0, math.nan, math.nan)
        assert sanitizer.violations[0].invariant == "cycle_monotonicity"

    def test_repeats_count_but_record_once(self):
        sanitizer = RunSanitizer()
        sanitizer.on_commit(0.0, 0.0, 0.0, 10.0, 10.0)
        for _ in range(5):
            sanitizer.on_commit(0.0, 0.0, 0.0, 1.0, 1.0)
        assert len(sanitizer.violations) == 1
        assert sanitizer.counts["cycle_monotonicity"] == 5

    def test_stage_order_checked_per_window(self):
        sanitizer = RunSanitizer(window=2)
        sanitizer.on_commit(0.0, 1.0, 2.0, 3.0, 4.0)
        # Window boundary: issue precedes map.
        sanitizer.on_commit(0.0, 5.0, 1.0, 6.0, 7.0)
        [violation] = sanitizer.violations
        assert violation.invariant == "stage_order"


class TestFatalChecks:
    def test_nan_readiness_time_raises(self):
        sanitizer = RunSanitizer()
        with pytest.raises(IntegrityError) as excinfo:
            sanitizer.check_time("load", math.nan, pc=0x80)
        assert excinfo.value.violation.invariant == "finite_latency"
        assert sanitizer.violations  # recorded as well as raised

    def test_negative_readiness_time_raises(self):
        sanitizer = RunSanitizer()
        with pytest.raises(IntegrityError):
            sanitizer.check_time("ifetch", -1.0)

    def test_finite_time_passes(self):
        sanitizer = RunSanitizer()
        sanitizer.check_time("load", 123.5)
        assert sanitizer.violations == []


class TestStrictMode:
    def test_strict_raises_on_nonfatal_violation(self):
        sanitizer = RunSanitizer(strict=True)
        sanitizer.on_commit(0.0, 0.0, 0.0, 10.0, 10.0)
        with pytest.raises(IntegrityError) as excinfo:
            sanitizer.on_commit(0.0, 0.0, 0.0, 1.0, 1.0)
        assert excinfo.value.violation.invariant == "cycle_monotonicity"


class TestAudits:
    def test_clean_result_passes(self):
        sanitizer = RunSanitizer()
        violations = sanitizer.audit_result(
            make_result(), expected_instructions=50
        )
        assert violations == []

    def test_instruction_conservation(self):
        sanitizer = RunSanitizer()
        sanitizer.audit_result(make_result(), expected_instructions=99)
        [violation] = sanitizer.violations
        assert violation.invariant == "instruction_conservation"
        assert violation.snapshot == {"retired": 50, "expected": 99}

    def test_ipc_above_default_bound(self):
        sanitizer = RunSanitizer()
        sanitizer.audit_result(make_result(cycles=1.0))
        [violation] = sanitizer.violations
        assert violation.invariant == "ipc_bound"
        assert violation.snapshot["bound"] == DEFAULT_IPC_BOUND

    def test_ipc_bound_uses_attached_retire_width(self):
        from repro.core.config import MachineConfig

        sanitizer = RunSanitizer()
        config = MachineConfig()

        class _Hier:
            pass

        hier = _Hier()
        from repro.memory.mshr import MissAddressFile
        hier.maf_i = hier.maf_d = hier.maf_l2 = MissAddressFile()
        hier.l1d = hier.l1i = None
        sanitizer.attach(config, hier)
        sanitizer._hier = None  # skip the conservation audit
        # IPC of 50/4 = 12.5 exceeds the 21264's retire width of 11
        # but not the generous default bound of 16.
        sanitizer.audit_result(make_result(cycles=4.0))
        [violation] = sanitizer.violations
        assert violation.invariant == "ipc_bound"
        assert violation.snapshot["bound"] == float(config.retire_width)

    def test_stack_sum_mismatch(self):
        sanitizer = RunSanitizer()
        result = make_result(cpi_stack={"base": 1.0, "memory": 1.5})
        sanitizer.audit_result(result)  # cpi = 2.0, stack sums to 2.5
        [violation] = sanitizer.violations
        assert violation.invariant == "cpi_stack_sum"

    def test_exact_stack_passes(self):
        sanitizer = RunSanitizer()
        result = make_result(cpi_stack={"base": 1.5, "memory": 0.5})
        assert sanitizer.audit_result(result) == []

    def test_negative_counter_flagged(self):
        sanitizer = RunSanitizer()
        result = make_result(stats=RunStats(dcache_misses=-3))
        sanitizer.audit_result(result)
        [violation] = sanitizer.violations
        assert violation.invariant == "finite_stats"
        assert "dcache_misses" in violation.message

    def test_nonfinite_cycles_flagged(self):
        sanitizer = RunSanitizer()
        sanitizer.audit_result(make_result(cycles=math.inf))
        invariants = {v.invariant for v in sanitizer.violations}
        assert "finite_stats" in invariants

    def test_maf_peak_audit(self):
        from repro.memory.mshr import MafConfig, MissAddressFile

        sanitizer = RunSanitizer()
        maf = MissAddressFile(MafConfig(entries=2))
        # Three overlapping fills admitted (the PR 2 bug shape).
        for index in range(3):
            maf.record_fill(index * 64, 100.0, start=0.0)

        class _Hier:
            pass

        hier = _Hier()
        hier.maf_i = hier.maf_d = hier.maf_l2 = maf
        hier.l1d = hier.l1i = None
        sanitizer.attach(None, hier)
        sanitizer._hier = None
        sanitizer.audit_result(make_result())
        [violation] = sanitizer.violations
        assert violation.invariant == "maf_occupancy"
        assert violation.snapshot["peak"] == 3
        assert violation.snapshot["entries"] == 2


def _dram_hier(dram):
    """Minimal attached hierarchy exposing a DRAM model and clean,
    zero-miss caches (so the conservation audit passes through)."""
    from repro.memory.mshr import MissAddressFile

    class _Stats:
        misses = 0

    class _Cache:
        stats = _Stats()

    class _Hier:
        pass

    hier = _Hier()
    hier.maf_i = hier.maf_d = hier.maf_l2 = MissAddressFile()
    hier.l1d = hier.l1i = _Cache()
    hier.dram = dram
    return hier


def _exercised_sdram(policy="open"):
    """An Sdram that has absorbed a small mixed access pattern."""
    from repro.dram.config import DramConfig
    from repro.dram.sdram import Sdram

    dram = Sdram(DramConfig().with_policy(policy))
    time = 0.0
    for paddr in (0, 64, 4096, 0, 16384, 128):
        time = dram.access(time, paddr)
    return dram


def _dram_sanitizer(dram):
    sanitizer = RunSanitizer()
    sanitizer.attach(None, _dram_hier(dram))
    return sanitizer


class TestDramAudits:
    @pytest.mark.parametrize("policy", ["open", "closed"])
    def test_real_model_is_clean(self, policy):
        sanitizer = _dram_sanitizer(_exercised_sdram(policy))
        sanitizer._audit_dram()
        assert sanitizer.violations == []

    def test_missing_dram_is_skipped(self):
        sanitizer = RunSanitizer()
        hier = _dram_hier(None)
        del hier.dram
        sanitizer.attach(None, hier)
        sanitizer._audit_dram()
        assert sanitizer.violations == []

    def test_row_overcount_breaks_partition(self):
        dram = _exercised_sdram()
        dram.stats.row_hits += 2  # hits + misses no longer == accesses
        sanitizer = _dram_sanitizer(dram)
        sanitizer._audit_dram()
        [violation] = sanitizer.violations
        assert violation.invariant == "dram_row_accounting"
        assert violation.snapshot["accesses"] == dram.stats.accesses

    def test_negative_conflicts_flagged_as_accounting(self):
        dram = _exercised_sdram()
        dram.stats.bank_conflicts = -1
        sanitizer = _dram_sanitizer(dram)
        sanitizer._audit_dram()
        [violation] = sanitizer.violations
        assert violation.invariant == "dram_row_accounting"

    def test_conflict_overflow_flagged(self):
        dram = _exercised_sdram()
        dram.stats.bank_conflicts = dram.stats.accesses + 1
        sanitizer = _dram_sanitizer(dram)
        sanitizer._audit_dram()
        [violation] = sanitizer.violations
        assert violation.invariant == "dram_bank_conservation"

    def test_phantom_row_hit_under_closed_page(self):
        dram = _exercised_sdram("closed")
        # Move one access from the miss column to the hit column: the
        # partition still balances, but a closed-page bank can never
        # score a row hit.
        dram.stats.row_hits += 1
        dram.stats.row_misses -= 1
        sanitizer = _dram_sanitizer(dram)
        sanitizer._audit_dram()
        [violation] = sanitizer.violations
        assert violation.invariant == "dram_page_policy"
        assert violation.snapshot["page_policy"] == "closed"

    def test_excess_precharges_under_open_page(self):
        dram = _exercised_sdram("open")
        dram.stats.precharges = dram.stats.row_misses + 1
        sanitizer = _dram_sanitizer(dram)
        sanitizer._audit_dram()
        [violation] = sanitizer.violations
        assert violation.invariant == "dram_page_policy"

    def test_audit_result_reaches_dram(self):
        dram = _exercised_sdram()
        dram.stats.row_hits += 1
        sanitizer = _dram_sanitizer(dram)
        sanitizer.audit_result(make_result(), expected_instructions=50)
        assert [v.invariant for v in sanitizer.violations] == [
            "dram_row_accounting"
        ]


class TestViolationRecords:
    def test_round_trip(self):
        violation = InvariantViolation(
            invariant="ipc_bound", message="IPC 50 outside (0, 4]",
            simulator="sim-alpha", workload="M-M",
            snapshot={"ipc": 50.0},
        )
        clone = InvariantViolation.from_dict(violation.to_dict())
        assert clone == violation

    def test_str_names_cell(self):
        violation = InvariantViolation(
            invariant="ipc_bound", message="bad",
            simulator="sim-alpha", workload="M-M",
        )
        assert "sim-alpha" in str(violation)
        assert "M-M" in str(violation)

    def test_invariant_registry_is_complete(self):
        assert "maf_occupancy" in INVARIANTS
        assert len(INVARIANTS) == len(set(INVARIANTS))


class TestSanitizersBundle:
    def test_disabled_returns_none(self):
        assert Sanitizers.disabled().run_sanitizer() is None

    def test_enabled_hands_out_fresh_sanitizers(self):
        bundle = Sanitizers(strict=True, window=64)
        first = bundle.run_sanitizer(simulator="a", workload="x")
        second = bundle.run_sanitizer(simulator="b", workload="y")
        assert first is not second
        assert first.strict and first.window == 64
        assert bundle.runs == [first, second]

    def test_take_violations_drains(self):
        bundle = Sanitizers()
        sanitizer = bundle.run_sanitizer()
        sanitizer.on_commit(0.0, 0.0, 0.0, 10.0, 10.0)
        sanitizer.on_commit(0.0, 0.0, 0.0, 1.0, 1.0)
        violations = bundle.take_violations()
        assert [v.invariant for v in violations] == ["cycle_monotonicity"]
        assert bundle.take_violations() == []
