"""Watchdog and stuck-simulation detection."""

import os
import signal

import pytest

from repro.integrity import watchdog as watchdog_module
from repro.integrity.watchdog import (
    PORT_SCAN_LIMIT,
    SimulationStuck,
    Watchdog,
    install_escalation_handler,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestWatchdog:
    def test_progress_resets_the_clock(self):
        clock = FakeClock()
        watchdog = Watchdog(stall_s=10.0, clock=clock)
        for step in range(100):
            clock.now = step * 9.0  # always inside the budget
            watchdog.beat(step * 8192, float(step))

    def test_no_progress_raises(self):
        clock = FakeClock()
        watchdog = Watchdog(stall_s=10.0, clock=clock)
        watchdog.beat(8192, 100.0)
        clock.now = 10.0
        with pytest.raises(SimulationStuck) as excinfo:
            watchdog.beat(16384, 100.0)  # retire frontier frozen
        error = excinfo.value
        assert error.instructions == 16384
        assert error.retire == 100.0
        assert "stuck" in str(error)

    def test_retire_regression_is_not_progress(self):
        clock = FakeClock()
        watchdog = Watchdog(stall_s=5.0, clock=clock)
        watchdog.beat(1, 100.0)
        clock.now = 6.0
        with pytest.raises(SimulationStuck):
            watchdog.beat(2, 99.0)

    def test_within_budget_is_quiet(self):
        clock = FakeClock()
        watchdog = Watchdog(stall_s=10.0, clock=clock)
        watchdog.beat(1, 100.0)
        clock.now = 9.9
        watchdog.beat(2, 100.0)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Watchdog(stall_s=0.0)


class TestEscalationHandler:
    @pytest.fixture()
    def armed(self):
        previous = signal.getsignal(signal.SIGUSR1)
        beat = dict(watchdog_module._last_beat)
        assert install_escalation_handler()
        try:
            yield
        finally:
            signal.signal(signal.SIGUSR1, previous)
            watchdog_module._last_beat.update(beat)

    def test_sigusr1_raises_stuck(self, armed):
        with pytest.raises(SimulationStuck) as excinfo:
            os.kill(os.getpid(), signal.SIGUSR1)
        assert "SIGUSR1" in excinfo.value.detail

    def test_dump_carries_last_heartbeat(self, armed):
        clock = FakeClock()
        Watchdog(stall_s=10.0, clock=clock).beat(8192, 100.0)
        with pytest.raises(SimulationStuck) as excinfo:
            os.kill(os.getpid(), signal.SIGUSR1)
        assert excinfo.value.instructions == 8192
        assert excinfo.value.retire == 100.0


class TestPortScanBound:
    def test_limit_is_generous(self):
        """The bound must sit far above any real arbitration scan — a
        port conflict resolves within a few cycles of the width."""
        assert PORT_SCAN_LIMIT >= 100_000

    def test_retire_livelock_is_diagnosed(self, workloads):
        """A machine that can never retire (width 0) must raise
        SimulationStuck with the frontier state, not loop forever."""
        from repro.integrity.faultinject import FaultedAlpha

        trace = workloads.trace("C-R")
        simulator = FaultedAlpha("retire_livelock")
        with pytest.raises(SimulationStuck) as excinfo:
            simulator.run_trace(trace, "C-R")
        assert "retire" in str(excinfo.value)


class TestEscalationState:
    """Pipeline stage/port state riding the heartbeat into SIGUSR1
    escalation snapshots."""

    @pytest.fixture(autouse=True)
    def restore_beat(self):
        beat = dict(watchdog_module._last_beat)
        yield
        watchdog_module._last_beat.clear()
        watchdog_module._last_beat.update(beat)

    def test_record_heartbeat_keeps_the_latest_state(self):
        from repro.integrity.watchdog import record_heartbeat

        record_heartbeat(8192, 10.0, {"stage": "retire", "rob": 3})
        assert watchdog_module._last_beat["state"] == {
            "stage": "retire", "rob": 3,
        }
        # A stateless beat must not erase the last known state.
        record_heartbeat(16384, 20.0)
        assert watchdog_module._last_beat["instructions"] == 16384
        assert watchdog_module._last_beat["state"]["stage"] == "retire"

    def test_watchdog_raise_carries_the_state(self):
        clock = FakeClock()
        watchdog = Watchdog(stall_s=5.0, clock=clock)
        watchdog.beat(1, 100.0)
        clock.now = 6.0
        state = {"stage": "retire", "rob": 64, "intq": 20}
        with pytest.raises(SimulationStuck) as excinfo:
            watchdog.beat(2, 100.0, state)
        assert excinfo.value.state == state

    def test_escalation_reports_the_heartbeat_state(self):
        from repro.integrity.watchdog import (
            install_escalation_handler,
            record_heartbeat,
        )

        previous = signal.getsignal(signal.SIGUSR1)
        assert install_escalation_handler()
        try:
            record_heartbeat(8192, 42.0, {"stage": "issue-port-scan"})
            with pytest.raises(SimulationStuck) as excinfo:
                os.kill(os.getpid(), signal.SIGUSR1)
        finally:
            signal.signal(signal.SIGUSR1, previous)
        assert excinfo.value.instructions == 8192
        assert excinfo.value.state == {"stage": "issue-port-scan"}

    def test_pipeline_heartbeat_publishes_stage_state(self):
        """A real run past the heartbeat stride leaves a pipeline
        snapshot behind even with no Watchdog armed."""
        from repro.core.simalpha import SimAlpha
        from repro.validation.harness import Harness

        watchdog_module._last_beat["state"] = None
        Harness().run_one(SimAlpha, "M-D")  # 48k instructions > stride
        state = watchdog_module._last_beat["state"]
        assert state is not None
        assert state["stage"] == "retire"
        for key in ("pc", "rob", "intq", "fpq", "storeq",
                    "issue_cycles_live", "retire_cycles_live"):
            assert key in state
