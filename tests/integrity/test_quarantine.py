"""Quarantine semantics: violating cells leave the grid, with their
diagnosis preserved through serialisation."""

import pytest

from repro.integrity.sanitizers import (
    IntegrityError,
    InvariantViolation,
    Sanitizers,
)
from repro.result import SimResult
from repro.exec.spec import RunOptions
from repro.validation.harness import (
    CellFailure,
    Harness,
    ResultGrid,
    quarantine_failure,
)


class LyingSim:
    """Reports half the cycles it should (IPC blows past any width)."""

    name = "sim-lying"

    def run_trace(self, trace, workload):
        return SimResult(
            self.name, workload,
            cycles=max(1.0, len(trace) / 100.0),
            instructions=len(trace),
        )


class HonestSim:
    name = "sim-honest"

    def run_trace(self, trace, workload):
        return SimResult(
            self.name, workload,
            cycles=len(trace) * 2.0,
            instructions=len(trace),
        )


class TestQuarantine:
    def test_violating_cell_is_quarantined_not_added(self):
        harness = Harness(sanitizers=Sanitizers())
        grid = harness.run_grid([LyingSim, HonestSim], ["C-R"])
        assert grid.simulators() == ["sim-honest"]
        [failure] = grid.failures
        assert failure.kind == "invariant"
        assert (failure.simulator, failure.workload) == ("sim-lying", "C-R")
        violations = failure.snapshot["violations"]
        assert any(v["invariant"] == "ipc_bound" for v in violations)
        assert harness.failed_cells == [failure]

    def test_strict_mode_raises_instead(self):
        harness = Harness(sanitizers=Sanitizers(strict=True))
        with pytest.raises(IntegrityError) as excinfo:
            harness.run_grid([LyingSim], ["C-R"])
        assert excinfo.value.violation.invariant == "ipc_bound"

    def test_clean_grid_stays_clean(self):
        harness = Harness(sanitizers=Sanitizers())
        grid = harness.run_grid([HonestSim], ["C-R", "E-I"])
        assert grid.failures == []
        assert harness.failed_cells == []

    def test_quarantine_is_not_retried_or_cached(self, tmp_path):
        """Deterministic violations must not burn the retry budget or
        poison the cache."""
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        harness = Harness(sanitizers=Sanitizers())
        grid = harness.run_grid(
            [LyingSim], ["C-R"], RunOptions(cache=cache, retries=2),
        )
        [failure] = grid.failures
        assert failure.attempts == 1
        assert len(list((tmp_path / "cache").rglob("*.json"))) == 0


class TestFailureRoundTrip:
    def test_quarantined_failure_survives_json(self):
        violation = InvariantViolation(
            invariant="maf_occupancy",
            message="MAF peak occupancy 12 exceeds its 8 entries",
            simulator="sim-alpha", workload="M-M",
            snapshot={"peak": 12, "entries": 8},
        )
        grid = ResultGrid()
        grid.add(SimResult("sim-alpha", "C-R", cycles=10.0, instructions=5))
        grid.failures.append(quarantine_failure(
            [violation], simulator="sim-alpha", workload="M-M",
            attempts=2, elapsed_s=1.5,
        ))

        clone = ResultGrid.from_json(grid.to_json())
        [failure] = clone.failures
        assert failure.kind == "invariant"
        assert failure.attempts == 2
        assert failure.elapsed_s == 1.5
        restored = InvariantViolation.from_dict(
            failure.snapshot["violations"][0]
        )
        assert restored == violation

    def test_stuck_failure_survives_json(self):
        grid = ResultGrid()
        grid.failures.append(CellFailure(
            simulator="sim-alpha", workload="gzip", kind="stuck",
            message="simulation stuck: retire frontier frozen",
            snapshot={"instructions": 8192, "retire": 1e6},
        ))
        clone = ResultGrid.from_json(grid.to_json())
        [failure] = clone.failures
        assert failure.kind == "stuck"
        assert failure.snapshot == {"instructions": 8192, "retire": 1e6}

    def test_describe_is_one_line(self):
        failure = CellFailure(
            simulator="sim-alpha", workload="M-M", kind="invariant",
            message="ipc_bound violated",
        )
        text = failure.describe()
        assert "\n" not in text
        assert "sim-alpha" in text and "M-M" in text and "invariant" in text
