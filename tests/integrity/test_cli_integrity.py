"""CLI integrity surface: flags, exit codes, and the integrity
subcommand."""

import pytest

from repro.integrity.sanitizers import IntegrityError, InvariantViolation
from repro.validation.cli import main
from repro.validation.harness import CellFailure


def fake_experiment(kind="invariant"):
    """An experiment stub that leaves one failed cell on the harness."""

    def runner(quick, engine):
        engine["harness"].failed_cells.append(CellFailure(
            simulator="sim-alpha", workload="M-M", kind=kind,
            message="ipc_bound: IPC 50 outside (0, 11]",
        ))
        return "stub table"

    return runner


def strict_experiment(quick, engine):
    raise IntegrityError(InvariantViolation(
        invariant="cycle_monotonicity",
        message="retire went backwards",
        simulator="sim-alpha", workload="M-M",
    ))


class TestExitCodes:
    def test_failed_cells_exit_3(self, monkeypatch, capsys):
        import repro.validation.cli as cli

        monkeypatch.setitem(cli._EXPERIMENTS, "table2", fake_experiment())
        assert main(["table2", "--sanitize"]) == 3
        err = capsys.readouterr().err
        assert "quarantined" in err
        assert "sim-alpha on M-M: invariant" in err

    def test_strict_violation_exits_4(self, monkeypatch, capsys):
        import repro.validation.cli as cli

        monkeypatch.setitem(cli._EXPERIMENTS, "table2", strict_experiment)
        assert main(["table2", "--strict"]) == 4
        err = capsys.readouterr().err
        assert "cycle_monotonicity" in err

    def test_clean_run_exits_0(self, capsys):
        assert main(["table1"]) == 0


class TestFlagValidation:
    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            main(["table1", "--resume"])

    def test_stuck_after_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["table1", "--stuck-after", "0"])

    def test_sanitize_flags_reach_the_harness(self, monkeypatch):
        import repro.validation.cli as cli

        seen = {}

        def spy(quick, engine):
            harness = engine["harness"]
            seen["enabled"] = harness.sanitizers.enabled
            seen["strict"] = harness.sanitizers.strict
            seen["watchdog_s"] = harness.watchdog_s
            seen["checkpoint"] = harness.checkpoint
            seen["resume"] = harness.resume
            return "stub"

        monkeypatch.setitem(cli._EXPERIMENTS, "table2", spy)
        assert main([
            "table2", "--strict", "--stuck-after", "45",
            "--checkpoint", "/tmp/j.ckpt", "--resume",
        ]) == 0
        assert seen == {
            "enabled": True, "strict": True, "watchdog_s": 45.0,
            "checkpoint": "/tmp/j.ckpt", "resume": True,
        }

    def test_default_harness_has_integrity_off(self, monkeypatch):
        import repro.validation.cli as cli

        seen = {}

        def spy(quick, engine):
            harness = engine["harness"]
            seen["enabled"] = harness.sanitizers.enabled
            seen["watchdog_s"] = harness.watchdog_s
            return "stub"

        monkeypatch.setitem(cli._EXPERIMENTS, "table2", spy)
        assert main(["table2"]) == 0
        assert seen == {"enabled": False, "watchdog_s": None}


class TestIntegritySubcommand:
    def test_quick_matrix_runs_clean(self, capsys):
        assert main(["integrity", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "all faults detected; control clean" in out
        assert "maf_oversubscribe" in out

    def test_detection_failure_is_nonzero(self, monkeypatch, capsys):
        from repro.integrity import faultinject
        from repro.integrity.faultinject import Detection, DetectionMatrix

        def missing_matrix(workload="M-M", **kwargs):
            matrix = DetectionMatrix(workload=workload)
            matrix.rows.append(Detection(
                fault="control", description="", detected=False,
            ))
            matrix.rows.append(Detection(
                fault="cycle_skew", description="", detected=False,
            ))
            return matrix

        monkeypatch.setattr(
            faultinject, "run_detection_matrix", missing_matrix
        )
        assert main(["integrity", "--quick"]) == 1
        assert "SILENT CORRUPTIONS" in capsys.readouterr().out

    def test_sweep_flag_prints_coverage_report(self, monkeypatch, capsys):
        from repro.integrity import faultinject
        from repro.integrity.faultinject import Detection, DetectionMatrix

        seen = {}

        def fake_sweep(*, families=None, include_pool_faults=True,
                       **kwargs):
            seen["families"] = families
            seen["pool"] = include_pool_faults
            matrix = DetectionMatrix(workload="sweep")
            matrix.rows.append(Detection(
                fault="dram_row_overcount", description="",
                detected=True,
                channels=["invariant:dram_row_accounting"],
                expected_channel=True,
                workload="M-BANK", family="dram",
            ))
            return matrix

        monkeypatch.setattr(
            faultinject, "run_detection_sweep", fake_sweep
        )
        assert main(["integrity", "--sweep", "--families",
                     "dram,memory"]) == 0
        out = capsys.readouterr().out
        assert "Detection coverage" in out
        assert "1/1✓" in out
        assert seen == {"families": ["dram", "memory"], "pool": True}

    def test_sweep_rejects_unknown_family(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["integrity", "--sweep", "--families", "cache"])
        assert excinfo.value.code == 2
        assert "unknown workload family" in capsys.readouterr().err


class TestCheckpointGcSubcommand:
    def _journal(self, tmp_path, *digests):
        from repro.integrity.checkpoint import GridCheckpoint
        from repro.result import SimResult

        path = tmp_path / "grid.ckpt"
        checkpoint = GridCheckpoint(path)
        for digest in digests:
            checkpoint.record(
                digest, SimResult("s", "C-R", cycles=1.0, instructions=1)
            )
        return path, checkpoint

    def test_age_pass_prunes_and_reports(self, tmp_path, capsys):
        path, checkpoint = self._journal(tmp_path, "old", "new")
        checkpoint._recorded["old"] -= 7200.0
        checkpoint.flush()
        assert main([
            "checkpoint-gc", str(path), "--gc-max-age", "3600",
        ]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 of 2 entries, 1 kept" in out

    def test_journal_path_via_checkpoint_flag(self, tmp_path, capsys):
        path, _ = self._journal(tmp_path, "a")
        assert main([
            "checkpoint-gc", "--checkpoint", str(path),
        ]) == 0
        assert "pruned 0 of 1 entries, 1 kept" in capsys.readouterr().out

    def test_missing_path_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["checkpoint-gc"])

    def test_corrupt_journal_exits_2(self, tmp_path, capsys):
        path = tmp_path / "grid.ckpt"
        path.write_text("{truncated", encoding="utf-8")
        assert main(["checkpoint-gc", str(path)]) == 2
        assert "corrupt" in capsys.readouterr().err
