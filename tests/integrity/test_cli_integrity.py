"""CLI integrity surface: flags, exit codes, and the integrity
subcommand."""

import pytest

from repro.integrity.sanitizers import IntegrityError, InvariantViolation
from repro.validation.cli import main
from repro.validation.harness import CellFailure


def fake_experiment(kind="invariant"):
    """An experiment stub that leaves one failed cell on the harness."""

    def runner(quick, engine):
        engine["harness"].failed_cells.append(CellFailure(
            simulator="sim-alpha", workload="M-M", kind=kind,
            message="ipc_bound: IPC 50 outside (0, 11]",
        ))
        return "stub table"

    return runner


def strict_experiment(quick, engine):
    raise IntegrityError(InvariantViolation(
        invariant="cycle_monotonicity",
        message="retire went backwards",
        simulator="sim-alpha", workload="M-M",
    ))


class TestExitCodes:
    def test_failed_cells_exit_3(self, monkeypatch, capsys):
        import repro.validation.cli as cli

        monkeypatch.setitem(cli._EXPERIMENTS, "table2", fake_experiment())
        assert main(["table2", "--sanitize"]) == 3
        err = capsys.readouterr().err
        assert "quarantined" in err
        assert "sim-alpha on M-M: invariant" in err

    def test_strict_violation_exits_4(self, monkeypatch, capsys):
        import repro.validation.cli as cli

        monkeypatch.setitem(cli._EXPERIMENTS, "table2", strict_experiment)
        assert main(["table2", "--strict"]) == 4
        err = capsys.readouterr().err
        assert "cycle_monotonicity" in err

    def test_clean_run_exits_0(self, capsys):
        assert main(["table1"]) == 0


class TestFlagValidation:
    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            main(["table1", "--resume"])

    def test_stuck_after_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["table1", "--stuck-after", "0"])

    def test_sanitize_flags_reach_the_harness(self, monkeypatch):
        import repro.validation.cli as cli

        seen = {}

        def spy(quick, engine):
            harness = engine["harness"]
            seen["enabled"] = harness.sanitizers.enabled
            seen["strict"] = harness.sanitizers.strict
            seen["watchdog_s"] = harness.watchdog_s
            seen["checkpoint"] = harness.checkpoint
            seen["resume"] = harness.resume
            return "stub"

        monkeypatch.setitem(cli._EXPERIMENTS, "table2", spy)
        assert main([
            "table2", "--strict", "--stuck-after", "45",
            "--checkpoint", "/tmp/j.ckpt", "--resume",
        ]) == 0
        assert seen == {
            "enabled": True, "strict": True, "watchdog_s": 45.0,
            "checkpoint": "/tmp/j.ckpt", "resume": True,
        }

    def test_default_harness_has_integrity_off(self, monkeypatch):
        import repro.validation.cli as cli

        seen = {}

        def spy(quick, engine):
            harness = engine["harness"]
            seen["enabled"] = harness.sanitizers.enabled
            seen["watchdog_s"] = harness.watchdog_s
            return "stub"

        monkeypatch.setitem(cli._EXPERIMENTS, "table2", spy)
        assert main(["table2"]) == 0
        assert seen == {"enabled": False, "watchdog_s": None}


class TestIntegritySubcommand:
    def test_quick_matrix_runs_clean(self, capsys):
        assert main(["integrity", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "all faults detected; control clean" in out
        assert "maf_oversubscribe" in out

    def test_detection_failure_is_nonzero(self, monkeypatch, capsys):
        from repro.integrity import faultinject
        from repro.integrity.faultinject import Detection, DetectionMatrix

        def missing_matrix(workload="M-M", **kwargs):
            matrix = DetectionMatrix(workload=workload)
            matrix.rows.append(Detection(
                fault="control", description="", detected=False,
            ))
            matrix.rows.append(Detection(
                fault="cycle_skew", description="", detected=False,
            ))
            return matrix

        monkeypatch.setattr(
            faultinject, "run_detection_matrix", missing_matrix
        )
        assert main(["integrity", "--quick"]) == 1
        assert "SILENT CORRUPTIONS" in capsys.readouterr().out
