"""Fault-injection detection matrix: every injected corruption class
must be caught through its designed channel, with a clean control.

The in-process faults run everywhere (this is the tier-1 assertion of
the robustness acceptance criteria); the pool faults — which kill and
hang real worker processes — carry the ``fault_inject`` marker and run
in the integrity-smoke CI job.
"""

import json

import pytest

from repro.integrity.faultinject import (
    FAULTS,
    FaultedAlpha,
    run_detection_matrix,
    run_detection_sweep,
)
from repro.workloads.suite import WORKLOAD_FAMILIES

#: One cheap workload per family: the tier-1 sweep must stay fast while
#: still pairing every fault with a member of every stressing family.
REDUCED_FAMILIES = {
    "control": ("C-Ca",),
    "execute": ("E-D3",),
    "memory": ("M-D",),
    "dram": ("M-BANK",),
}


class TestRegistry:
    def test_at_least_six_fault_classes(self):
        in_process = [s for s in FAULTS.values() if not s.needs_pool]
        assert len(in_process) >= 6

    def test_every_fault_names_a_detection_channel(self):
        for spec in FAULTS.values():
            assert spec.expected, spec.name

    def test_every_fault_names_stressing_families(self):
        for spec in FAULTS.values():
            assert spec.families, spec.name
            unknown = [
                f for f in spec.families if f not in WORKLOAD_FAMILIES
            ]
            assert not unknown, (spec.name, unknown)

    def test_every_family_stresses_some_fault(self):
        paired = {f for spec in FAULTS.values() for f in spec.families}
        assert paired == set(WORKLOAD_FAMILIES)

    def test_dram_and_shared_maf_faults_registered(self):
        assert FAULTS["shared_maf_oversubscribe"].families == (
            "memory", "dram",
        )
        for name in (
            "dram_row_overcount",
            "dram_conflict_overflow",
            "dram_phantom_row_hit",
        ):
            assert FAULTS[name].families == ("dram",)
            assert FAULTS[name].expected[0].startswith("invariant:dram_")

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            FaultedAlpha("no_such_fault")
        assert "no_such_fault" in str(excinfo.value)

    def test_shared_maf_fault_shares_one_file(self):
        sim = FaultedAlpha("shared_maf_oversubscribe")
        from repro.core.pipeline import AlphaPipeline

        pipeline = AlphaPipeline(sim.config)
        hier = pipeline.hierarchy
        assert hier.maf_i is hier.maf_d is hier.maf_l2


class TestInProcessMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_detection_matrix(include_pool_faults=False)

    def test_control_runs_are_clean(self, matrix):
        # One control per distinct workload: the default plus any
        # workload a pinned fault (blockcache_corruption) runs on.
        controls = [r for r in matrix.rows if r.fault == "control"]
        assert len(controls) >= 1
        for control in controls:
            assert not control.detected
            assert control.channels == []

    def test_no_silent_corruptions(self, matrix):
        assert matrix.silent_corruptions() == []

    def test_every_fault_caught_via_expected_channel(self, matrix):
        assert matrix.all_caught
        for row in matrix.rows:
            if row.fault == "control" or row.skipped:
                continue
            expected = FAULTS[row.fault].expected
            assert any(c in expected for c in row.channels), (
                row.fault, row.channels, expected
            )

    def test_render_mentions_every_fault(self, matrix):
        rendered = matrix.render()
        for row in matrix.rows:
            assert row.fault in rendered


class TestSweep:
    """The workload-swept matrix over one cheap member per family."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return run_detection_sweep(
            family_members=REDUCED_FAMILIES,
            include_pool_faults=False,
        )

    def test_full_coverage(self, sweep):
        assert sweep.all_caught
        assert sweep.silent_corruptions() == []

    def test_every_in_process_fault_swept(self, sweep):
        swept = {r.fault for r in sweep.rows if not r.skipped}
        expected = {
            name for name, spec in FAULTS.items() if not spec.needs_pool
        }
        assert expected <= swept

    def test_one_clean_control_per_workload(self, sweep):
        controls = [r for r in sweep.rows if r.fault == "control"]
        fault_workloads = {
            r.workload for r in sweep.rows
            if r.fault != "control" and not r.skipped
        }
        assert {c.workload for c in controls} == fault_workloads
        assert all(not c.detected for c in controls)

    def test_cells_carry_family_pairing(self, sweep):
        for row in sweep.rows:
            if row.fault == "control" or row.skipped:
                continue
            assert row.family in FAULTS[row.fault].families, (
                row.fault, row.family,
            )
            pinned = FAULTS[row.fault].workloads
            if pinned:
                assert row.workload in pinned
            else:
                assert row.workload in REDUCED_FAMILIES[row.family]

    def test_shared_maf_caught_on_both_families(self, sweep):
        cells = [
            r for r in sweep.rows
            if r.fault == "shared_maf_oversubscribe"
        ]
        assert {c.family for c in cells} == {"memory", "dram"}
        for cell in cells:
            assert cell.detected
            assert "invariant:maf_occupancy" in cell.channels

    def test_dram_faults_caught_by_designed_invariants(self, sweep):
        for name in (
            "dram_row_overcount",
            "dram_conflict_overflow",
            "dram_phantom_row_hit",
        ):
            cells = [r for r in sweep.rows if r.fault == name]
            assert cells, name
            for cell in cells:
                assert cell.detected and cell.expected_channel, (
                    name, cell.workload, cell.channels,
                )

    def test_render_has_workload_and_family_columns(self, sweep):
        rendered = sweep.render()
        assert "workload" in rendered.splitlines()[0]
        assert "M-BANK" in rendered
        assert "dram" in rendered

    def test_json_round_trips(self, sweep):
        payload = json.loads(sweep.to_json())
        assert payload["workload"] == "sweep"
        assert len(payload["rows"]) == len(sweep.rows)

    def test_family_filter_drops_out_of_scope_faults(self):
        sweep = run_detection_sweep(
            families=["dram"],
            faults=["cycle_skew", "dram_row_overcount"],
            family_members=REDUCED_FAMILIES,
            include_pool_faults=False,
        )
        swept = {r.fault for r in sweep.rows if r.fault != "control"}
        assert swept == {"dram_row_overcount"}
        assert sweep.all_caught

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError, match="unknown workload family"):
            run_detection_sweep(families=["cache"])


class TestSweepDeterminism:
    def test_repeated_sweep_serialises_byte_identical(self):
        """The matrix is a measurement artifact: re-running the same
        sweep must reproduce the same JSON byte for byte (no wall-clock
        or ordering noise in rows, channels, or details)."""
        kwargs = dict(
            faults=["cycle_skew", "dram_row_overcount"],
            family_members={
                "control": ("C-Ca",),
                "execute": ("E-D3",),
                "dram": ("M-BANK",),
            },
            include_pool_faults=False,
        )
        cold = run_detection_sweep(**kwargs)
        again = run_detection_sweep(**kwargs)
        assert cold.to_json() == again.to_json()


#: One cheap representative fault per family — the CI matrix legs
#: (``pytest -m fault_inject -k <family>``) each sweep exactly one.
REPRESENTATIVE_FAULTS = {
    "control": "cycle_skew",
    "execute": "ipc_overflow",
    "memory": "maf_oversubscribe",
    "dram": "dram_row_overcount",
}


@pytest.mark.fault_inject
class TestFamilySmoke:
    @pytest.mark.parametrize(
        "family", sorted(REPRESENTATIVE_FAULTS)
    )
    def test_family_representative_detected(self, family):
        fault = REPRESENTATIVE_FAULTS[family]
        sweep = run_detection_sweep(
            faults=[fault],
            families=[family],
            family_members=REDUCED_FAMILIES,
            include_pool_faults=False,
        )
        assert sweep.all_caught, sweep.silent_corruptions()
        rows = [r for r in sweep.rows if r.fault == fault]
        assert rows
        assert all(r.family == family and r.detected for r in rows)


@pytest.mark.fault_inject
class TestPoolMatrix:
    """Worker-killing faults: the pool must diagnose a hard-killed and
    a hung worker rather than losing the grid."""

    def test_pool_faults_detected(self):
        matrix = run_detection_matrix(
            faults=["worker_crash", "worker_hang"],
            include_pool_faults=True,
        )
        skipped = [r.fault for r in matrix.rows if r.skipped]
        if skipped:
            pytest.skip(f"pool unavailable here: {skipped}")
        assert matrix.all_caught
        channels = {
            r.fault: r.channels
            for r in matrix.rows if r.fault != "control"
        }
        assert channels["worker_crash"] == ["crash"]
        assert channels["worker_hang"] == ["timeout"]
