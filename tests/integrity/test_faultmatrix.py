"""Fault-injection detection matrix: every injected corruption class
must be caught through its designed channel, with a clean control.

The in-process faults run everywhere (this is the tier-1 assertion of
the robustness acceptance criteria); the pool faults — which kill and
hang real worker processes — carry the ``fault_inject`` marker and run
in the integrity-smoke CI job.
"""

import pytest

from repro.integrity.faultinject import (
    FAULTS,
    FaultedAlpha,
    run_detection_matrix,
)


class TestRegistry:
    def test_at_least_six_fault_classes(self):
        in_process = [s for s in FAULTS.values() if not s.needs_pool]
        assert len(in_process) >= 6

    def test_every_fault_names_a_detection_channel(self):
        for spec in FAULTS.values():
            assert spec.expected, spec.name

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            FaultedAlpha("no_such_fault")
        assert "no_such_fault" in str(excinfo.value)


class TestInProcessMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_detection_matrix(include_pool_faults=False)

    def test_control_run_is_clean(self, matrix):
        [control] = [r for r in matrix.rows if r.fault == "control"]
        assert not control.detected
        assert control.channels == []

    def test_no_silent_corruptions(self, matrix):
        assert matrix.silent_corruptions() == []

    def test_every_fault_caught_via_expected_channel(self, matrix):
        assert matrix.all_caught
        for row in matrix.rows:
            if row.fault == "control" or row.skipped:
                continue
            expected = FAULTS[row.fault].expected
            assert any(c in expected for c in row.channels), (
                row.fault, row.channels, expected
            )

    def test_render_mentions_every_fault(self, matrix):
        rendered = matrix.render()
        for row in matrix.rows:
            assert row.fault in rendered


@pytest.mark.fault_inject
class TestPoolMatrix:
    """Worker-killing faults: the pool must diagnose a hard-killed and
    a hung worker rather than losing the grid."""

    def test_pool_faults_detected(self):
        matrix = run_detection_matrix(
            faults=["worker_crash", "worker_hang"],
            include_pool_faults=True,
        )
        skipped = [r.fault for r in matrix.rows if r.skipped]
        if skipped:
            pytest.skip(f"pool unavailable here: {skipped}")
        assert matrix.all_caught
        channels = {
            r.fault: r.channels
            for r in matrix.rows if r.fault != "control"
        }
        assert channels["worker_crash"] == ["crash"]
        assert channels["worker_hang"] == ["timeout"]
