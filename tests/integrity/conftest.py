"""Shared fixtures for the integrity-subsystem tests."""

import pytest


@pytest.fixture(scope="module")
def harness():
    from repro.validation.harness import Harness

    return Harness()


@pytest.fixture(scope="session")
def workloads():
    from repro.workloads import WorkloadSet

    return WorkloadSet()
