"""Tests for the harness and (reduced) experiment drivers.

The drivers run on reduced workload lists here to keep the test suite
quick; the full-size runs live in ``benchmarks/``.
"""

import math

import pytest

from repro.core.simalpha import SimAlpha
from repro.simulators.simoutorder import SimOutOrder
from repro.validation.calibrate import calibrate_dram, sim_alpha_with_dram
from repro.dram.config import DramConfig
from repro.validation.experiments import (
    bug_walk,
    figure2_regfile,
    sampling_interval_study,
    table1_latencies,
    table2_micro,
    table3_macro,
    table4_features,
    table5_stability,
)
from repro.validation.harness import Harness


@pytest.fixture(scope="module")
def harness():
    return Harness()


class TestHarness:
    def test_run_one(self, harness):
        result = harness.run_one(SimAlpha, "E-D1")
        assert result.workload == "E-D1"
        assert result.cycles > 0

    def test_run_grid(self, harness):
        grid = harness.run_grid([SimAlpha, SimOutOrder], ["E-D1", "E-D2"])
        assert set(grid.simulators()) == {"sim-alpha", "sim-outorder"}
        assert set(grid.workloads()) == {"E-D1", "E-D2"}
        assert grid.get("sim-alpha", "E-D1").ipc > 0

    def test_grid_ipcs(self, harness):
        grid = harness.run_grid([SimAlpha], ["E-D1"])
        assert "E-D1" in grid.ipcs("sim-alpha")


class TestTable1:
    def test_measured_matches_configured(self):
        result = table1_latencies()
        assert result.max_deviation() < 0.15
        assert "Table 1" in result.render()


class TestTable2:
    def test_reduced_run_shape(self, harness):
        result = table2_micro(harness, benchmarks=["C-Ca", "E-D1", "E-DM1"])
        assert len(result.rows) == 3
        # The validated simulator beats sim-initial in aggregate.
        assert result.mean_alpha_error < result.mean_initial_error
        # C-Ca: sim-initial grossly underestimates (negative error).
        assert result.row("C-Ca").initial_error < -50
        # E-DM1: sim-initial grossly overestimates (positive error).
        assert result.row("E-DM1").initial_error > 50
        assert "Table 2" in result.render()


class TestTable3:
    def test_reduced_run_shape(self, harness):
        result = table3_macro(harness, benchmarks=["eon", "mesa", "art"])
        assert result.row("mesa").alpha_error < 0   # underestimated
        assert result.row("art").alpha_error > 0    # the outlier
        assert result.row("mesa").outorder_diff > result.row(
            "mesa"
        ).alpha_error
        assert result.native_hm_ipc > 0
        assert "Table 3" in result.render()


class TestTable4:
    def test_reduced_run_shape(self, harness):
        result = table4_features(
            harness, benchmarks=["art", "mesa"],
            features=["addr", "trap"],
        )
        addr = result.column("addr")
        trap = result.column("trap")
        # Removing an optimizing feature hurts; removing a
        # constraining feature helps.
        assert addr.mean_change < 0
        assert trap.mean_change > 0
        assert addr.stddev >= 0
        with pytest.raises(KeyError):
            result.column("warp")


class TestTable5:
    def test_reduced_run_shape(self, harness):
        result = table5_stability(
            harness, benchmarks=["gzip", "mesa"], features=["luse"],
        )
        faster_l1 = result.improvements["l1_latency_3_to_1"]
        # The 1-cycle L1 helps the baseline...
        assert faster_l1["sim-alpha"] > 0
        # ...and is n/a in the no-luse configuration, as in the paper.
        assert math.isnan(faster_l1["luse"])
        assert "sim-outorder" in result.configurations
        assert result.spread("l1_latency_3_to_1") >= 0
        assert "Table 5" in result.render()


class TestFigure2:
    def test_reduced_run_shape(self, harness):
        result = figure2_regfile(harness, benchmarks=["go", "swim"])
        # The 8-way machine is far faster in absolute IPC.
        hm8 = result.harmonic_means("8-way")
        hma = result.harmonic_means("sim-alpha")
        assert hm8[0] > hma[0]
        # Removing full bypass costs the 8-way machine much more.
        assert result.bypass_loss("8-way") < result.bypass_loss(
            "sim-alpha"
        ) - 1.0
        assert "Figure 2" in result.render()


class TestBugWalk:
    def test_reduced_run(self, harness):
        result = bug_walk(
            harness,
            benchmarks=["C-Ca", "C-S1"],
            bugs=["late_branch_recovery", "jmp_undercharge"],
        )
        assert result.mean_error["late_branch_recovery"] > (
            result.baseline_error
        )
        assert "late_branch_recovery" in result.render()


class TestSampling:
    def test_best_interval_is_40k(self):
        result = sampling_interval_study()
        assert result.best_interval() == 40_000
        assert len(result.rows) == 5


class TestCalibration:
    def test_tiny_sweep_structure(self, harness):
        configs = [
            DramConfig(page_policy="open"),
            DramConfig(page_policy="closed"),
            DramConfig(cas_cycles=2),
        ]
        result = calibrate_dram(
            harness, configs=configs, workloads=["M-M", "lmbench-memory"]
        )
        assert len(result.ranking) == 3
        errors = [error for _, error, _ in result.ranking]
        assert errors == sorted(errors)  # best first
        assert result.best_error == errors[0]
        assert set(result.residuals()) == {"M-M", "lmbench-memory"}
        assert "DRAM" in result.render()

    def test_sim_alpha_with_dram_names(self):
        sim = sim_alpha_with_dram(DramConfig(page_policy="closed"))
        assert "closed" in sim.name
