"""Tests for the Section 7 recommendation experiments."""

import math

import pytest

from repro.validation.harness import Harness
from repro.validation.recommendations import (
    baseline_spread,
    parameter_sensitivity,
    stability_score,
)


@pytest.fixture(scope="module")
def harness():
    return Harness()


class TestBaselineSpread:
    def test_five_groups(self, harness):
        result = baseline_spread(harness, workload="compress")
        assert len(result.ipcs) == 5
        assert all(ipc > 0 for ipc in result.ipcs.values())

    def test_spread_is_large(self, harness):
        """The ISCA-27 phenomenon: a multi-x IPC spread for one
        benchmark across plausible simulators."""
        result = baseline_spread(harness, workload="compress")
        assert result.spread_ratio > 2.0

    def test_idealized_fastest_validated_family_slowest(self, harness):
        result = baseline_spread(harness, workload="compress")
        ordered = sorted(result.ipcs.items(), key=lambda kv: kv[1])
        assert "8-wide" in ordered[-1][0]
        assert "validated" in ordered[0][0] or "academic" in ordered[0][0]

    def test_render(self, harness):
        result = baseline_spread(harness, workload="compress")
        assert "Common-baselines" in result.render()


class TestParameterSensitivity:
    def test_benefit_varies_with_background(self, harness):
        result = parameter_sensitivity(harness, benchmarks=("mesa",))
        assert len(result.rows) == 3
        low, high = result.benefit_range
        assert low <= high
        assert "Consistent-parameters" in result.render()


class TestStabilityScore:
    def test_perfectly_stable(self):
        assert stability_score({"a": 5.0, "b": 5.0}) == 0.0

    def test_unstable(self):
        score = stability_score({"a": 10.0, "b": -2.0})
        assert score > 1.0

    def test_ignores_nan(self):
        score = stability_score({"a": 5.0, "b": float("nan"), "c": 5.0})
        assert score == 0.0

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            stability_score({"a": float("nan")})

    def test_zero_benefit_defined(self):
        assert stability_score({"a": 0.0, "b": 0.0}) == 0.0

    def test_scale_invariant(self):
        small = stability_score({"a": 1.0, "b": 2.0})
        big = stability_score({"a": 10.0, "b": 20.0})
        assert small == pytest.approx(big)
