"""Tests for the warm-up / steady-state analysis."""

import pytest

from repro.result import RunStats, SimResult
from repro.validation.harness import Harness
from repro.validation.warmup import WarmupProfile, warmup_study


@pytest.fixture(scope="module")
def harness():
    return Harness()


class FakeWindowSim:
    """Emits hand-picked window marks so the windowed-IPC arithmetic is
    checkable exactly."""

    name = "fake-window"

    def __init__(self, marks, instructions, cycles):
        self.marks = marks
        self.instructions = instructions
        self.cycles = cycles

    def run_trace(self, trace, workload, window_size=4096):
        stats = RunStats()
        stats.extra["window_retire_times"] = list(self.marks)
        return SimResult(
            self.name, workload,
            cycles=self.cycles, instructions=self.instructions, stats=stats,
        )


def test_profile_structure(harness):
    profile = warmup_study("gzip", harness=harness, window_size=4096)
    assert len(profile.window_ipcs) >= 2
    assert profile.steady_ipc > 0
    assert "Warm-up profile" in profile.render()


def test_cold_start_is_slower(harness):
    """The first window carries cold caches/predictors: below steady."""
    profile = warmup_study("gzip", harness=harness, window_size=2048)
    assert profile.window_ipcs[0] < profile.steady_ipc


def test_settles(harness):
    profile = warmup_study("E-D2", harness=harness, window_size=4096,
                           tolerance=0.10)
    assert profile.settled_window is not None
    assert profile.settled_instructions <= 5 * 4096


def test_truncation_error_shrinks(harness):
    profile = warmup_study("gzip", harness=harness, window_size=2048)
    early = abs(profile.truncation_error(1))
    late = abs(profile.truncation_error(len(profile.window_ipcs)))
    assert late < early


def test_truncation_error_bounds(harness):
    profile = warmup_study("E-D1", harness=harness, window_size=4096)
    with pytest.raises(ValueError):
        profile.truncation_error(0)
    with pytest.raises(ValueError):
        profile.truncation_error(10_000)


def test_window_too_big_rejected(harness):
    with pytest.raises(ValueError, match="fewer than two"):
        warmup_study("E-D1", harness=harness, window_size=10**7)


def test_partial_final_window_is_scaled(harness):
    """350 instructions in 100-instruction windows: three full windows
    of IPC 1.0 and a 50-instruction tail taking 100 cycles — the tail's
    IPC must be 0.5 (retired/cycles), not window_size/cycles."""
    simulator = FakeWindowSim(
        marks=[100.0, 200.0, 300.0], instructions=350, cycles=400.0
    )
    profile = warmup_study(
        "E-I", harness=harness, simulator=simulator, window_size=100
    )
    assert profile.window_ipcs == [1.0, 1.0, 1.0, 0.5]
    assert profile.steady_ipc == pytest.approx(0.75)


def test_exact_multiple_has_no_phantom_window(harness):
    simulator = FakeWindowSim(
        marks=[100.0, 250.0, 350.0], instructions=300, cycles=350.0
    )
    profile = warmup_study(
        "E-I", harness=harness, simulator=simulator, window_size=100
    )
    assert len(profile.window_ipcs) == 3
    assert profile.window_ipcs == [
        pytest.approx(100 / 100), pytest.approx(100 / 150),
        pytest.approx(100 / 100),
    ]


def test_truncation_error_rejects_degenerate_windows():
    profile = WarmupProfile(
        workload="x", window_size=100, window_ipcs=[0.0, 1.0],
        steady_ipc=1.0, settled_window=None, tolerance=0.05,
    )
    with pytest.raises(ValueError, match="non-positive"):
        profile.truncation_error(1)
    assert profile.truncation_error(2) == pytest.approx(-100.0)
