"""Tests for the warm-up / steady-state analysis."""

import pytest

from repro.validation.harness import Harness
from repro.validation.warmup import warmup_study


@pytest.fixture(scope="module")
def harness():
    return Harness()


def test_profile_structure(harness):
    profile = warmup_study("gzip", harness=harness, window_size=4096)
    assert len(profile.window_ipcs) >= 2
    assert profile.steady_ipc > 0
    assert "Warm-up profile" in profile.render()


def test_cold_start_is_slower(harness):
    """The first window carries cold caches/predictors: below steady."""
    profile = warmup_study("gzip", harness=harness, window_size=2048)
    assert profile.window_ipcs[0] < profile.steady_ipc


def test_settles(harness):
    profile = warmup_study("E-D2", harness=harness, window_size=4096,
                           tolerance=0.10)
    assert profile.settled_window is not None
    assert profile.settled_instructions <= 5 * 4096


def test_truncation_error_shrinks(harness):
    profile = warmup_study("gzip", harness=harness, window_size=2048)
    early = abs(profile.truncation_error(1))
    late = abs(profile.truncation_error(len(profile.window_ipcs)))
    assert late < early


def test_truncation_error_bounds(harness):
    profile = warmup_study("E-D1", harness=harness, window_size=4096)
    with pytest.raises(ValueError):
        profile.truncation_error(0)
    with pytest.raises(ValueError):
        profile.truncation_error(10_000)


def test_window_too_big_rejected(harness):
    with pytest.raises(ValueError, match="fewer than two"):
        warmup_study("E-D1", harness=harness, window_size=10**7)
