"""Harness-level observability: grid errors, persistence, metrics."""

import pytest

from repro import SimAlpha
from repro.obs import Instrumentation, MetricsRegistry
from repro.result import RunStats, SimResult
from repro.validation.harness import Harness, ResultGrid


def make_result(sim="sim-alpha", workload="C-R", **kwargs):
    return SimResult(sim, workload, cycles=100.0, instructions=50, **kwargs)


class TestResultGridGet:
    def test_unknown_simulator_lists_known(self):
        grid = ResultGrid()
        grid.add(make_result("sim-alpha"))
        grid.add(make_result("sim-initial"))
        with pytest.raises(KeyError) as excinfo:
            grid.get("sim-outorder", "C-R")
        message = str(excinfo.value)
        assert "sim-outorder" in message
        assert "sim-alpha" in message and "sim-initial" in message

    def test_unknown_workload_lists_known(self):
        grid = ResultGrid()
        grid.add(make_result(workload="C-R"))
        grid.add(make_result(workload="M-D"))
        with pytest.raises(KeyError) as excinfo:
            grid.get("sim-alpha", "gzip")
        message = str(excinfo.value)
        assert "gzip" in message
        assert "C-R" in message and "M-D" in message

    def test_hit_still_works(self):
        grid = ResultGrid()
        result = make_result()
        grid.add(result)
        assert grid.get("sim-alpha", "C-R") is result


class TestResultGridAdd:
    def test_duplicate_cell_is_an_error(self):
        grid = ResultGrid()
        grid.add(make_result())
        with pytest.raises(ValueError) as excinfo:
            grid.add(make_result())
        message = str(excinfo.value)
        assert "sim-alpha" in message and "C-R" in message
        assert "replace=True" in message

    def test_replace_overwrites(self):
        grid = ResultGrid()
        grid.add(make_result())
        updated = make_result()
        updated.cycles = 999.0
        grid.add(updated, replace=True)
        assert grid.get("sim-alpha", "C-R").cycles == 999.0

    def test_same_workload_under_other_simulator_is_fine(self):
        grid = ResultGrid()
        grid.add(make_result("sim-alpha"))
        grid.add(make_result("sim-initial"))
        assert grid.simulators() == ["sim-alpha", "sim-initial"]

    def test_ipcs_unknown_simulator_lists_known(self):
        grid = ResultGrid()
        grid.add(make_result("sim-alpha"))
        with pytest.raises(KeyError) as excinfo:
            grid.ipcs("sim-outorder")
        message = str(excinfo.value)
        assert "sim-outorder" in message and "sim-alpha" in message


class TestObserverSignatureCache:
    def test_one_inspection_per_simulator_class(self, monkeypatch):
        """A grid of N cells over one simulator class must cost one
        ``inspect.signature`` call, not N — bound methods are recreated
        on every attribute access, so the cache keys on ``__func__``."""
        import inspect

        import repro.validation.harness as harness_mod

        class PlainSim:
            name = "plain"

            def run_trace(self, trace, workload):
                return make_result(self.name, workload)

        harness_mod._SIGNATURE_CACHE.clear()
        inspected = []
        real_signature = inspect.signature

        def counting_signature(obj, *args, **kwargs):
            inspected.append(obj)
            return real_signature(obj, *args, **kwargs)

        monkeypatch.setattr(inspect, "signature", counting_signature)
        harness = Harness()
        harness.run_grid(
            [PlainSim], ["C-R", "E-I", "M-D"],
            instrumentation=Instrumentation(),
        )
        assert len(inspected) == 1
        assert inspected[0] is PlainSim.run_trace


class TestCanonicalJson:
    def test_canonical_blanks_only_volatile_provenance(self):
        harness = Harness()
        grid = harness.run_grid([SimAlpha], ["E-I"])
        canonical = ResultGrid.from_json(grid.to_json(canonical=True))
        provenance = canonical.get("sim-alpha", "E-I").provenance
        original = grid.get("sim-alpha", "E-I").provenance
        assert provenance.created == ""
        assert provenance.host == ""
        assert provenance.platform == ""
        assert provenance.python == ""
        assert provenance.config_hash == original.config_hash
        assert provenance.config_name == original.config_name
        assert provenance.package_version == original.package_version

    def test_plain_json_keeps_provenance(self):
        harness = Harness()
        grid = harness.run_grid([SimAlpha], ["E-I"])
        clone = ResultGrid.from_json(grid.to_json())
        assert clone.get("sim-alpha", "E-I").provenance.created != ""


class TestResultGridJson:
    def test_round_trip_preserves_everything(self):
        stats = RunStats(branch_mispredicts=7, dcache_misses=3)
        stats.extra["window_size"] = 64
        stats.extra["window_retire_times"] = [10.0, 20.0]
        grid = ResultGrid()
        grid.add(make_result(
            stats=stats,
            cpi_stack={"base": 1.0, "memory": 1.0},
        ))
        grid.add(make_result("sim-initial", "M-D"))

        clone = ResultGrid.from_json(grid.to_json())
        assert clone.simulators() == grid.simulators()
        assert clone.workloads() == grid.workloads()
        restored = clone.get("sim-alpha", "C-R")
        assert restored.cycles == 100.0
        assert restored.instructions == 50
        assert restored.stats.branch_mispredicts == 7
        assert restored.stats.extra["window_size"] == 64
        assert restored.stats.extra["window_retire_times"] == [10.0, 20.0]
        assert restored.cpi_stack == {"base": 1.0, "memory": 1.0}

    def test_round_trip_preserves_provenance(self):
        harness = Harness()
        grid = harness.run_grid([SimAlpha], ["E-I"])
        clone = ResultGrid.from_json(grid.to_json())
        original = grid.get("sim-alpha", "E-I")
        restored = clone.get("sim-alpha", "E-I")
        assert restored.provenance == original.provenance
        assert restored.stats == original.stats

    def test_rejects_foreign_payloads(self):
        with pytest.raises(ValueError):
            ResultGrid.from_json('{"format": "something-else"}')


class TestHarnessMetrics:
    def test_run_grid_records_per_cell_timings(self):
        registry = MetricsRegistry()
        harness = Harness(metrics=registry)
        progress_calls = []
        harness.run_grid(
            [SimAlpha], ["E-I", "C-R"],
            progress=lambda sim, wl: progress_calls.append((sim, wl)),
        )
        assert progress_calls == [
            ("sim-alpha", "E-I"), ("sim-alpha", "C-R"),
        ]
        snap = registry.snapshot()
        assert snap["counters"]["harness.runs"] == 2
        assert snap["timers"]["harness.cell.sim-alpha.E-I"]["count"] == 1
        assert snap["timers"]["harness.cell.sim-alpha.C-R"]["total_s"] > 0

    def test_default_harness_records_nothing(self):
        harness = Harness()
        harness.run_one(SimAlpha, "E-I")
        assert harness.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "timers": {},
        }


class TestInstrumentedGrid:
    def test_grid_runs_collect_stacks_and_hierarchy_traffic(self):
        instrumentation = Instrumentation()
        harness = Harness(metrics=instrumentation.registry)
        grid = harness.run_grid(
            [SimAlpha], ["E-I"], instrumentation=instrumentation
        )
        result = grid.get("sim-alpha", "E-I")
        assert result.cpi_stack is not None
        snap = instrumentation.registry.snapshot()
        assert snap["counters"]["pipeline.instructions"] == \
            result.instructions
        assert snap["counters"]["memory.ifetches"] > 0

    def test_tracer_ring_bound_respected_through_pipeline(self):
        instrumentation = Instrumentation(trace=True, trace_capacity=128)
        harness = Harness()
        result = harness.run_one(
            SimAlpha, "C-R", instrumentation=instrumentation
        )
        tracer = instrumentation.last_tracer()
        assert tracer.recorded == result.instructions
        assert len(tracer) == 128
        assert tracer.dropped == result.instructions - 128
        # Events arrive in retirement order with sane stage ordering.
        events = tracer.events
        assert all(
            events[i].retire <= events[i + 1].retire
            for i in range(len(events) - 1)
        )
        for event in events[:16]:
            assert event.fetch <= event.retire
            assert event.cause in (
                "base", "fetch", "issue", "memory", "trap", "bubble",
            )

    def test_disabled_instrumentation_is_inert(self):
        instrumentation = Instrumentation.disabled()
        harness = Harness()
        result = harness.run_one(
            SimAlpha, "E-I", instrumentation=instrumentation
        )
        assert result.cpi_stack is None
        assert instrumentation.runs == []
        assert instrumentation.last_tracer() is None
