"""Tests (including property-based) for the error metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.validation.metrics import (
    arithmetic_mean,
    harmonic_mean,
    mean_absolute_error,
    percent_change,
    percent_error_cpi,
    std_deviation,
)

positive_floats = st.floats(min_value=0.01, max_value=1e6)


class TestPercentErrorCpi:
    def test_sign_convention(self):
        """Slower simulator (higher CPI) => negative error, as in the
        paper's Tables 2 and 3."""
        assert percent_error_cpi(2.0, 1.0) == -100.0
        assert percent_error_cpi(0.5, 1.0) == 50.0
        assert percent_error_cpi(1.0, 1.0) == 0.0

    def test_rejects_bad_reference(self):
        with pytest.raises(ValueError):
            percent_error_cpi(1.0, 0.0)

    @given(positive_floats, positive_floats)
    def test_antisymmetry_direction(self, sim, ref):
        error = percent_error_cpi(sim, ref)
        assert (error < 0) == (sim > ref)


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0

    def test_harmonic_known_value(self):
        assert harmonic_mean([1.0, 1.0]) == 1.0
        assert harmonic_mean([2.0, 2.0]) == 2.0
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)

    def test_mean_absolute_error(self):
        assert mean_absolute_error([-10, 10, -20]) == pytest.approx(40 / 3)

    def test_empty_rejected(self):
        for fn in (arithmetic_mean, harmonic_mean, std_deviation,
                   mean_absolute_error):
            with pytest.raises(ValueError):
                fn([])

    def test_harmonic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    @given(st.lists(positive_floats, min_size=1, max_size=50))
    def test_harmonic_le_arithmetic(self, values):
        assert harmonic_mean(values) <= arithmetic_mean(values) * (1 + 1e-9)

    @given(st.lists(positive_floats, min_size=1, max_size=50))
    def test_harmonic_within_range(self, values):
        hm = harmonic_mean(values)
        assert min(values) * (1 - 1e-9) <= hm <= max(values) * (1 + 1e-9)


class TestChangeAndDeviation:
    def test_percent_change(self):
        assert percent_change(1.1, 1.0) == pytest.approx(10.0)
        assert percent_change(0.9, 1.0) == pytest.approx(-10.0)

    def test_percent_change_rejects_bad_base(self):
        with pytest.raises(ValueError):
            percent_change(1.0, 0.0)

    def test_std_deviation_known(self):
        assert std_deviation([2, 2, 2]) == 0.0
        assert std_deviation([1, 3]) == pytest.approx(1.0)

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50))
    def test_std_nonnegative(self, values):
        assert std_deviation(values) >= 0.0

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
           st.floats(-100, 100))
    def test_std_shift_invariant(self, values, shift):
        base = std_deviation(values)
        shifted = std_deviation([v + shift for v in values])
        assert math.isclose(base, shifted, abs_tol=1e-6)
