"""Tests for the ablation drivers (reduced workload sets)."""

import pytest

from repro.validation.ablations import (
    ablate_native_effects,
    paging_policy_study,
    victim_buffer_sweep,
)
from repro.validation.harness import Harness


@pytest.fixture(scope="module")
def harness():
    return Harness()


class TestNativeEffectAblation:
    def test_structure_and_directions(self, harness):
        result = ablate_native_effects(harness, benchmarks=("mesa", "art"))
        assert len(result.contribution) == 8
        # PAL-code TLB handling can only slow the machine.
        assert result.contribution["pal_tlb_misses"] <= 0.1
        # The controller's extra open rows can only help.
        assert result.contribution["controller_page_opt"] >= -0.1
        assert "Ablation" in result.render()


class TestPagingPolicy:
    def test_three_policies(self, harness):
        result = paging_policy_study(
            harness, benchmarks=("mesa",), policies=("sequential", "hashed")
        )
        assert set(result.ipcs) == {"sequential", "hashed"}
        for per_bench in result.ipcs.values():
            assert per_bench["mesa"] > 0
        assert result.hm("sequential") > 0


class TestVictimBufferSweep:
    def test_monotone_ish(self, harness):
        result = victim_buffer_sweep(
            harness, benchmarks=("vpr",), sizes=(0, 8)
        )
        by_size = {entries: gain for entries, _, gain in result.rows}
        assert by_size[0] == 0.0
        assert by_size[8] >= -0.5
        assert "victim" in result.render()
