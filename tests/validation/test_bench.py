"""The benchmark-trajectory harness: artifact schema, comparison
semantics, and the regression gate's directionality."""

import json

import pytest

from repro.validation.bench import (
    BENCH_FORMAT,
    compare_artifacts,
    load_artifact,
    render_comparison,
    run_bench,
    write_artifact,
)


def metric(value, *, gate=True, higher_is_better=True, unit="x"):
    return {
        "value": value,
        "unit": unit,
        "gate": gate,
        "higher_is_better": higher_is_better,
    }


def artifact(metrics, label="test"):
    return {
        "format": BENCH_FORMAT,
        "label": label,
        "created": "2026-01-01T00:00:00Z",
        "package_version": "0",
        "metrics": metrics,
    }


class TestCompare:
    def test_gated_drop_past_threshold_regresses(self):
        old = artifact({"m": metric(1.0)})
        new = artifact({"m": metric(0.8)})
        rows, regressions = compare_artifacts(old, new, threshold=0.15)
        assert [row["name"] for row in regressions] == ["m"]
        assert rows[0]["change"] == pytest.approx(-0.2)

    def test_drop_within_threshold_passes(self):
        old = artifact({"m": metric(1.0)})
        new = artifact({"m": metric(0.9)})
        _, regressions = compare_artifacts(old, new, threshold=0.15)
        assert regressions == []

    def test_improvement_never_regresses(self):
        old = artifact({"m": metric(1.0)})
        new = artifact({"m": metric(5.0)})
        _, regressions = compare_artifacts(old, new, threshold=0.15)
        assert regressions == []

    def test_lower_is_better_flips_the_bad_direction(self):
        """An overhead ratio going *up* is the regression."""
        old = artifact({"ovh": metric(1.0, higher_is_better=False)})
        worse = artifact({"ovh": metric(1.5, higher_is_better=False)})
        better = artifact({"ovh": metric(0.5, higher_is_better=False)})
        _, regressions = compare_artifacts(old, worse, threshold=0.15)
        assert len(regressions) == 1
        _, regressions = compare_artifacts(old, better, threshold=0.15)
        assert regressions == []

    def test_info_metrics_never_gate(self):
        """Raw KIPS is machine-dependent: a 90% drop is still not a
        regression, because CI hardware is not your hardware."""
        old = artifact({"kips": metric(100.0, gate=False)})
        new = artifact({"kips": metric(10.0, gate=False)})
        rows, regressions = compare_artifacts(old, new, threshold=0.15)
        assert regressions == []
        assert rows[0]["change"] == pytest.approx(-0.9)

    def test_metrics_missing_from_either_side_are_skipped(self):
        old = artifact({"only_old": metric(1.0)})
        new = artifact({"only_new": metric(1.0)})
        rows, regressions = compare_artifacts(old, new)
        assert rows == [] and regressions == []

    def test_render_flags_regressions_and_info(self):
        old = artifact({"m": metric(1.0), "k": metric(9.0, gate=False)})
        new = artifact({"m": metric(0.5), "k": metric(1.0, gate=False)})
        rows, regressions = compare_artifacts(old, new, threshold=0.15)
        text = render_comparison(rows, regressions, threshold=0.15)
        assert "REGRESSION" in text
        assert "(info)" in text
        assert "1 gated metric(s) regressed past 15%" in text

    def test_render_clean_verdict(self):
        rows, regressions = compare_artifacts(
            artifact({"m": metric(1.0)}), artifact({"m": metric(1.0)})
        )
        text = render_comparison(rows, regressions, threshold=0.15)
        assert "no gated regressions" in text


class TestArtifactIO:
    def test_write_load_round_trip(self, tmp_path):
        payload = artifact({"m": metric(1.5)})
        path = tmp_path / "nested" / "BENCH_test.json"
        write_artifact(payload, str(path))
        assert load_artifact(str(path)) == payload

    def test_load_rejects_foreign_formats(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else/1"}))
        with pytest.raises(ValueError, match="not a bench artifact"):
            load_artifact(str(path))


class TestRunBench:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        scratch = tmp_path_factory.mktemp("bench-cache")
        return run_bench(
            label="unit", kips_workloads=("C-S1",), rounds=1,
            cache_root=str(scratch),
        )

    def test_artifact_shape(self, result):
        assert result["format"] == BENCH_FORMAT
        assert result["label"] == "unit"
        assert result["created"].endswith("Z")
        for record in result["metrics"].values():
            assert set(record) == {
                "value", "unit", "gate", "higher_is_better",
            }

    def test_pinned_suite_is_present(self, result):
        names = set(result["metrics"])
        assert "kips.sim-alpha.C-S1" in names
        assert "engine.parallel_speedup_j2" in names
        assert "cache.warm_hit_rate" in names
        assert "obs.disabled_overhead_ratio" in names
        assert "profiler.coverage" in names

    def test_gated_metrics_hold_their_contracts(self, result):
        metrics = result["metrics"]
        # A just-populated cache answers every probe.
        assert metrics["cache.warm_hit_rate"]["value"] == 1.0
        # The phase table explains (essentially all of) the run.
        assert metrics["profiler.coverage"]["value"] >= 0.95
        assert metrics["kips.sim-alpha.C-S1"]["gate"] is False

    def test_self_comparison_is_clean(self, result):
        _, regressions = compare_artifacts(result, result)
        assert regressions == []
