"""Tests for the event-divergence diagnosis tool."""

import pytest

from repro.core.simalpha import SimAlpha
from repro.core.siminitial import make_sim_with_bugs
from repro.result import RunStats, SimResult
from repro.simulators.refmachine import make_native_machine
from repro.validation.diagnose import diagnose
from repro.validation.harness import Harness


@pytest.fixture(scope="module")
def harness():
    return Harness()


def test_workload_mismatch_rejected():
    a = SimResult("s", "x", 100.0, 100)
    b = SimResult("r", "y", 100.0, 100)
    with pytest.raises(ValueError, match="mismatch"):
        diagnose(a, b)


def test_identical_runs_diverge_nowhere():
    stats = RunStats(branch_mispredicts=10)
    a = SimResult("s", "w", 100.0, 1000, stats)
    b = SimResult("r", "w", 100.0, 1000, stats)
    result = diagnose(a, b)
    assert result.cpi_error_percent == 0.0
    assert all(d.delta_per_ki == 0.0 for d in result.divergences)


def test_synthetic_divergence_ranked_first():
    a = SimResult("s", "w", 100.0, 1000,
                  RunStats(branch_mispredicts=100, dcache_misses=5))
    b = SimResult("r", "w", 100.0, 1000,
                  RunStats(branch_mispredicts=10, dcache_misses=5))
    result = diagnose(a, b)
    assert result.divergences[0].event == "branch_mispredicts"
    assert result.divergences[0].delta_per_ki == pytest.approx(90.0)


def test_minimum_delta_filters():
    a = SimResult("s", "w", 100.0, 1000, RunStats(branch_mispredicts=11))
    b = SimResult("r", "w", 100.0, 1000, RunStats(branch_mispredicts=10))
    filtered = diagnose(a, b, minimum_delta=5.0)
    assert all(d.event != "branch_mispredicts"
               for d in filtered.divergences)


def test_points_at_injected_bug(harness):
    """Injecting the masked-address bug must surface load_order_traps
    as a leading divergence — the paper's M-D debugging session."""
    trace = harness.workloads.trace("M-I")
    reference = make_native_machine().run_trace(trace, "M-I")
    buggy = make_sim_with_bugs("masked_load_trap_addresses").run_trace(
        trace, "M-I"
    )
    result = diagnose(buggy, reference)
    leading = [d.event for d in result.top(3) if abs(d.delta_per_ki) > 0]
    assert "load_order_traps" in leading


def test_penalty_only_bug_yields_penalty_hint(harness):
    """late_branch_recovery changes *penalties*, not event rates: the
    diagnosis must say so rather than pointing at an event."""
    trace = harness.workloads.trace("C-Ca")
    reference = make_native_machine().run_trace(trace, "C-Ca")
    buggy = make_sim_with_bugs("late_branch_recovery").run_trace(
        trace, "C-Ca"
    )
    result = diagnose(buggy, reference)
    assert result.cpi_error_percent < -20
    text = result.render()
    assert "Diagnosis for C-Ca" in text
    assert "penalty" in text


def test_event_bug_yields_event_hint(harness):
    trace = harness.workloads.trace("M-I")
    reference = make_native_machine().run_trace(trace, "M-I")
    buggy = make_sim_with_bugs("masked_load_trap_addresses").run_trace(
        trace, "M-I"
    )
    text = diagnose(buggy, reference).render()
    assert "where to look first" in text
