"""Fake simulators for the execution-engine tests.

The fakes follow the :class:`repro.result.Simulator` protocol but cost
nothing to run; their frozen-dataclass configs feed the provenance
hash, so distinct fakes get distinct cache keys exactly like real
simulators.  Worker processes are *forked*, so these classes work as
factories without being importable from the worker or picklable.
"""

import os
import time
from dataclasses import dataclass

from repro.result import RunStats, SimResult


@dataclass(frozen=True)
class FakeConfig:
    name: str
    flavor: str = "ok"
    cycles_per_instr: float = 2.0


class FakeSim:
    """Deterministic, instant fake simulator.

    ``flavor`` selects a failure mode, triggered only on the workload
    named by ``FAIL_WORKLOAD`` so fault isolation is observable next to
    healthy cells: ``"raise"`` throws, ``"crash"`` kills the worker
    process, ``"hang"`` sleeps past any sane timeout.
    """

    FAIL_WORKLOAD = "E-I"
    HANG_SECONDS = 30.0

    def __init__(self, config: FakeConfig):
        self.config = config

    @property
    def name(self) -> str:
        return self.config.name

    def run_trace(self, trace, workload: str) -> SimResult:
        flavor = self.config.flavor
        if workload == self.FAIL_WORKLOAD:
            if flavor == "raise":
                raise RuntimeError(f"{self.name} deliberately failed")
            if flavor == "crash":
                os._exit(17)
            if flavor == "hang":
                time.sleep(self.HANG_SECONDS)
        instructions = len(trace)
        stats = RunStats()
        stats.extra["fake_marker"] = float(instructions)
        return SimResult(
            simulator=self.name,
            workload=workload,
            cycles=instructions * self.config.cycles_per_instr,
            instructions=instructions,
            stats=stats,
        )


def fake_factory(name: str, flavor: str = "ok", cpi: float = 2.0):
    """A simulator factory for one :class:`FakeSim` configuration."""
    config = FakeConfig(name=name, flavor=flavor, cycles_per_instr=cpi)
    return lambda: FakeSim(config)
