"""Retry backoff: bounded, exponential, deterministically jittered."""

import time

import pytest

from exec_fakes import fake_factory
from repro.exec.engine import ExperimentEngine, RetryBackoff
from repro.exec.spec import RunOptions


class TestRetryBackoff:
    def test_deterministic_for_same_key_and_attempt(self):
        backoff = RetryBackoff()
        assert backoff.delay("sim:wl", 3) == backoff.delay("sim:wl", 3)

    def test_jitter_separates_keys(self):
        backoff = RetryBackoff()
        assert backoff.delay("sim-a:wl", 2) != backoff.delay("sim-b:wl", 2)

    def test_exponential_growth_up_to_cap(self):
        backoff = RetryBackoff(base_s=0.05, cap_s=2.0, jitter=0.0)
        delays = [backoff.delay("k", attempt) for attempt in range(1, 9)]
        assert delays[:4] == [0.05, 0.1, 0.2, 0.4]
        assert delays[-1] == 2.0  # capped
        assert all(a <= b for a, b in zip(delays, delays[1:]))

    def test_jitter_stays_within_fraction(self):
        backoff = RetryBackoff(base_s=1.0, cap_s=1.0, jitter=0.25)
        for key in ("a", "b", "c", "d"):
            delay = backoff.delay(key, 1)
            assert 0.75 <= delay <= 1.0

    def test_zero_config_is_zero_delay(self):
        backoff = RetryBackoff(base_s=0.0, cap_s=0.0, jitter=0.0)
        assert backoff.delay("k", 5) == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"base_s": -0.1},
        {"cap_s": -1.0},
        {"jitter": 1.5},
        {"jitter": -0.1},
        {"max_delay_s": -1.0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryBackoff(**kwargs)

    def test_max_delay_ceiling_bounds_pathological_cap(self):
        """Regression: a misconfigured cap_s must not schedule sleeps
        past the explicit max_delay_s ceiling — a re-leased shard
        chaining such delays would outlive its lease."""
        backoff = RetryBackoff(base_s=10.0, cap_s=3600.0, jitter=0.0)
        delays = [backoff.delay("k", attempt) for attempt in range(1, 12)]
        assert max(delays) <= RetryBackoff.MAX_DELAY_S
        assert delays[-1] == RetryBackoff.MAX_DELAY_S

    def test_max_delay_custom_ceiling_honoured(self):
        backoff = RetryBackoff(
            base_s=1.0, cap_s=100.0, jitter=0.0, max_delay_s=5.0
        )
        assert backoff.delay("k", 10) == 5.0
        assert all(
            backoff.delay("k", attempt) <= 5.0
            for attempt in range(1, 20)
        )

    def test_max_delay_does_not_disturb_sane_schedules(self):
        """The ceiling is a backstop: schedules already under it are
        byte-for-byte what they were before the ceiling existed."""
        capped = RetryBackoff(base_s=0.05, cap_s=2.0, jitter=0.0)
        delays = [capped.delay("k", attempt) for attempt in range(1, 9)]
        assert delays[:4] == [0.05, 0.1, 0.2, 0.4]
        assert delays[-1] == 2.0


class TestEngineUsesBackoff:
    def test_inprocess_retries_wait_between_attempts(self, monkeypatch):
        """The serial engine must consult the backoff schedule between
        attempts of a raising cell."""
        sleeps = []
        monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))
        engine = ExperimentEngine(
            options=RunOptions(retries=2),
            backoff=RetryBackoff(base_s=0.05, cap_s=2.0, jitter=0.0),
        )
        grid = engine.run_grid(
            [fake_factory("fake-raise", flavor="raise")], ["E-I"],
        )
        [failure] = grid.failures
        assert failure.attempts == 3
        assert sleeps == [0.05, 0.1]  # between attempts, not after last
