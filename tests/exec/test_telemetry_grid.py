"""Grid-level telemetry: determinism under canonical JSON, the run
ledger across execution modes, and OpenMetrics export stability."""

import json
import os

from exec_fakes import fake_factory
from repro.obs.registry import MetricsRegistry
from repro.exec.spec import RunOptions
from repro.validation.harness import Harness, ResultGrid

NAMES = ["C-R", "E-I", "M-D"]


def factories():
    return [fake_factory("fake-a"), fake_factory("fake-b", cpi=3.0)]


class TestCanonicalDeterminism:
    def test_telemetry_is_always_captured(self, harness):
        grid = harness.run_grid(factories(), NAMES)
        for simulator in grid.simulators():
            for workload in NAMES:
                telemetry = grid.get(simulator, workload).telemetry
                assert telemetry is not None
                assert telemetry.instructions > 0
                assert telemetry.pid == os.getpid()

    def test_worker_telemetry_names_the_worker_process(self, harness):
        grid = harness.run_grid(factories(), NAMES, RunOptions(jobs=2))
        pids = {
            grid.get(simulator, workload).telemetry.pid
            for simulator in grid.simulators()
            for workload in NAMES
        }
        assert os.getpid() not in pids

    def test_parallel_and_serial_serialise_byte_identically(self, harness):
        """The acceptance bar: telemetry enabled (it always is), a
        jobs=2 grid and a serial grid produce byte-identical canonical
        JSON — canonical blanks the volatile telemetry."""
        serial = harness.run_grid(factories(), NAMES)
        parallel = harness.run_grid(factories(), NAMES, RunOptions(jobs=2))
        assert parallel.to_json(canonical=True) == \
            serial.to_json(canonical=True)

    def test_canonical_blanks_telemetry_but_full_json_keeps_it(
            self, harness):
        grid = harness.run_grid(factories(), ["C-R"])
        canonical = json.loads(grid.to_json(canonical=True))
        assert all(
            entry["telemetry"] is None for entry in canonical["results"]
        )
        full = json.loads(grid.to_json())
        assert all(
            entry["telemetry"]["wall_s"] >= 0.0
            for entry in full["results"]
        )

    def test_telemetry_survives_a_json_round_trip(self, harness):
        grid = harness.run_grid(factories(), ["C-R"])
        clone = ResultGrid.from_json(grid.to_json())
        original = grid.get("fake-a", "C-R").telemetry
        assert clone.get("fake-a", "C-R").telemetry == original


class TestRunLedger:
    def read(self, path):
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert lines[0]["type"] == "header"
        return lines[1:]

    def test_serial_grid_writes_one_line_per_cell(self, harness,
                                                  tmp_path):
        path = tmp_path / "serial.jsonl"
        harness.run_grid(factories(), NAMES, RunOptions(ledger=path))
        cells = self.read(path)
        assert len(cells) == len(NAMES) * 2
        assert all(cell["status"] == "ok" for cell in cells)
        assert all(cell["source"] == "run" for cell in cells)
        assert all(cell["telemetry"]["instructions"] > 0
                   for cell in cells)

    def test_parallel_grid_ledger_covers_every_cell(self, harness,
                                                    tmp_path):
        path = tmp_path / "parallel.jsonl"
        harness.run_grid(
            factories(), NAMES, RunOptions(jobs=2, ledger=path)
        )
        cells = self.read(path)
        assert len(cells) == len(NAMES) * 2
        settled = {(c["simulator"], c["workload"]) for c in cells}
        assert len(settled) == len(NAMES) * 2

    def test_cache_hits_are_attributed_to_the_cache(self, harness,
                                                    tmp_path):
        cache_dir = tmp_path / "cache"
        harness.run_grid(
            factories(), ["C-R"], RunOptions(cache=str(cache_dir))
        )
        path = tmp_path / "warm.jsonl"
        harness.run_grid(
            factories(), ["C-R"],
            RunOptions(cache=str(cache_dir), ledger=path),
        )
        cells = self.read(path)
        assert all(cell["source"] == "cache" for cell in cells)
        assert all(cell["telemetry"] is not None for cell in cells)

    def test_failures_are_ledgered_with_their_kind(self, harness,
                                                   tmp_path):
        path = tmp_path / "failing.jsonl"
        harness.run_grid(
            [fake_factory("fake-bad", "raise")], ["C-R", "E-I"],
            RunOptions(jobs=2, ledger=path),
        )
        by_workload = {c["workload"]: c for c in self.read(path)}
        assert by_workload["C-R"]["status"] == "ok"
        assert by_workload["E-I"]["status"] == "exception"


class TestOpenMetricsStability:
    def run_registry(self, jobs=1):
        registry = MetricsRegistry()
        harness = Harness(metrics=registry)
        harness.run_grid(factories(), NAMES, RunOptions(jobs=jobs))
        return registry

    def test_render_is_deterministic_for_one_registry(self):
        registry = self.run_registry()
        assert registry.render_openmetrics() == \
            registry.render_openmetrics()

    def test_metric_families_are_stable_across_runs(self):
        """Two identical runs expose the same metric names (values are
        wall-clock and may differ; the *schema* must not)."""
        def families(registry):
            return [
                line for line in
                registry.render_openmetrics().splitlines()
                if line.startswith("# TYPE")
            ]

        assert families(self.run_registry()) == \
            families(self.run_registry())

    def test_parallel_run_exposes_the_same_telemetry_families(self):
        """Worker registries die with their processes; the parent
        mirrors pool telemetry, so serial and parallel runs publish
        the same telemetry.* families."""
        def telemetry_families(registry):
            return sorted(
                name for name in registry
                if name.startswith("telemetry.")
            )

        assert telemetry_families(self.run_registry(jobs=2)) == \
            telemetry_families(self.run_registry())

    def test_export_is_wellformed(self, tmp_path):
        registry = self.run_registry()
        path = tmp_path / "metrics.om"
        registry.write_openmetrics(path)
        text = path.read_text()
        assert text.endswith("# EOF\n")
        assert "repro_telemetry_cells_total" in text
