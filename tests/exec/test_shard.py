"""Sharded grid execution: coordinator, runners, leases, recovery.

Everything here runs the *production* shard path — forked
``shard_runner_main`` processes driven by a real
:class:`ShardCoordinator` — against the instant fake simulators, so
the distributed invariants (byte-identity with the serial run,
at-most-once commit, journal recovery) are exercised for real at unit
cost.
"""

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass

import pytest

from exec_fakes import fake_factory
from repro.exec.coordinator import ShardCoordinator, shard_status
from repro.exec.shard import PipeTransport, shard_journal_path
from repro.exec.spec import RunOptions
from repro.obs.registry import MetricsRegistry
from repro.result import RunStats, SimResult
from repro.validation.harness import Harness

fork_available = "fork" in multiprocessing.get_all_start_methods()

pytestmark = [
    pytest.mark.exec_pool,
    pytest.mark.skipif(
        not fork_available,
        reason="sharded execution requires the fork start method",
    ),
]

WORKLOADS = ["C-R", "E-I"]


@dataclass(frozen=True)
class SlowConfig:
    name: str
    delay_s: float = 0.1


class SlowSim:
    """Deterministic fake that burns wall-clock, widening the window
    in which a kill can land mid-lease."""

    def __init__(self, config: SlowConfig):
        self.config = config

    @property
    def name(self) -> str:
        return self.config.name

    def run_trace(self, trace, workload: str) -> SimResult:
        time.sleep(self.config.delay_s)
        return SimResult(
            simulator=self.name, workload=workload,
            cycles=len(trace) * 2.0, instructions=len(trace),
            stats=RunStats(),
        )


def slow_factory(name: str, delay_s: float = 0.1):
    config = SlowConfig(name, delay_s)
    return lambda: SlowSim(config)


def fake_grid_factories(count: int = 3):
    return [
        fake_factory(f"fake-{index}", cpi=1.0 + 0.5 * index)
        for index in range(count)
    ]


def counters(metrics: MetricsRegistry):
    return {
        name: counter.value
        for name, counter in metrics._counters.items()
    }


class TestPipeTransport:
    def test_round_trip_and_timeout(self):
        left, right = multiprocessing.Pipe(duplex=True)
        a, b = PipeTransport(left), PipeTransport(right)
        a.send(("ready", 0, None))
        assert b.poll(0.5)
        assert b.recv(timeout=0.5) == ("ready", 0, None)
        assert b.recv(timeout=0.01) is None  # timeout, not a hang
        assert not b.pending()  # pipes buffer nothing transport-side
        a.close()
        b.close()

    def test_recv_raises_on_peer_loss(self):
        left, right = multiprocessing.Pipe(duplex=True)
        a, b = PipeTransport(left), PipeTransport(right)
        a.close()
        with pytest.raises((EOFError, OSError)):
            b.recv()
        b.close()


class TestShardJournalPath:
    def test_derives_from_base(self):
        assert shard_journal_path("/tmp/grid.journal", 3) == \
            "/tmp/grid.journal.shard-3"


class TestCleanShardedRun:
    def test_byte_identical_to_serial_at_shards_4(self):
        """ISSUE acceptance: a clean sharded run at shards=4 must be
        byte-identical to the serial run under canonical
        serialisation."""
        serial = Harness().run_grid(fake_grid_factories(), WORKLOADS)
        metrics = MetricsRegistry()
        coordinator = ShardCoordinator(
            options=RunOptions(shards=4), metrics=metrics,
        )
        grid = coordinator.run_grid(fake_grid_factories(), WORKLOADS)
        assert grid.to_json(canonical=True) == \
            serial.to_json(canonical=True)
        seen = counters(metrics)
        total = len(WORKLOADS) * 3
        assert seen["shard.cells.computed"] == total
        # A clean pull-based run commits nothing twice and re-grants
        # nothing.
        assert "shard.cells.deduped" not in seen
        assert "shard.leases.regranted" not in seen
        assert "shard.runners.lost" not in seen

    def test_real_simulators_shard_identically(self):
        """The production sims produce the same bytes sharded as
        serial (the fakes can't vouch for provenance hashing)."""
        from repro import SimAlpha

        serial = Harness().run_grid([SimAlpha], ["C-R"])
        grid = ShardCoordinator(
            options=RunOptions(shards=2)
        ).run_grid([SimAlpha], ["C-R"])
        assert grid.to_json(canonical=True) == \
            serial.to_json(canonical=True)

    def test_harness_options_shards_route_to_coordinator(self):
        serial = Harness().run_grid(fake_grid_factories(), WORKLOADS)
        sharded = Harness(options=RunOptions(shards=3)).run_grid(
            fake_grid_factories(), WORKLOADS
        )
        assert sharded.to_json(canonical=True) == \
            serial.to_json(canonical=True)

    def test_run_grid_options_shards_override_default(self):
        serial = Harness().run_grid(fake_grid_factories(), WORKLOADS)
        sharded = Harness().run_grid(
            fake_grid_factories(), WORKLOADS, RunOptions(shards=2)
        )
        assert sharded.to_json(canonical=True) == \
            serial.to_json(canonical=True)


class TestFailureSettlement:
    def test_failing_cell_settles_as_cell_failure(self):
        """A raising cell must land as a diagnosable CellFailure on
        the grid (and on the harness), not hang or vanish."""
        harness = Harness(options=RunOptions(shards=2))
        factories = fake_grid_factories(2) + [
            fake_factory("fake-raise", flavor="raise")
        ]
        grid = harness.run_grid(factories, WORKLOADS)
        [failure] = grid.failures
        assert failure.simulator == "fake-raise"
        assert failure.workload == "E-I"
        assert failure.kind == "exception"
        assert harness.failed_cells == [failure]
        # The healthy cells all settled normally.
        assert sum(len(row) for row in grid.results.values()) == \
            len(WORKLOADS) * 3 - 1

    def test_runner_crash_with_no_budget_settles_lost(self):
        """A cell that kills its runner, with shards=1 and zero
        respawns, must settle the remainder as kind='lost' — bounded,
        diagnosable, never a hang."""
        metrics = MetricsRegistry()
        coordinator = ShardCoordinator(
            options=RunOptions(shards=1),
            max_respawns=0, lease_timeout_s=10.0, metrics=metrics,
        )
        factories = [
            fake_factory("fake-ok"),
            fake_factory("fake-crash", flavor="crash"),
        ]
        grid = coordinator.run_grid(factories, WORKLOADS)
        kinds = {failure.kind for failure in grid.failures}
        assert "lost" in kinds
        assert counters(metrics)["shard.runners.lost"] == 1
        assert counters(metrics)["shard.cells.lost"] >= 1
        # Every cell settled one way or the other.
        settled = sum(len(row) for row in grid.results.values()) + \
            len(grid.failures)
        assert settled == len(WORKLOADS) * 2


class TestWorkStealing:
    def test_killed_runner_cells_stolen_by_survivors(self):
        """ISSUE acceptance: SIGKILL a runner mid-lease with the
        respawn budget at zero; survivors finish its cells within the
        lease timeout and the grid matches serial byte-for-byte."""
        serial = Harness().run_grid(
            [slow_factory(f"slow-{i}") for i in range(4)], WORKLOADS
        )
        pids = {}
        killed = []

        def on_event(event, payload):
            if event == "runner_started":
                pids[payload["runner_id"]] = payload["pid"]
            elif (event == "cell_committed" and not killed
                    and payload.get("runner_id") is not None):
                victims = [
                    rid for rid in pids
                    if rid != payload["runner_id"]
                ]
                if victims:
                    os.kill(pids[victims[0]], signal.SIGKILL)
                    killed.append(victims[0])

        metrics = MetricsRegistry()
        coordinator = ShardCoordinator(
            options=RunOptions(shards=2),
            max_respawns=0, lease_timeout_s=6.0,
            metrics=metrics, on_event=on_event,
        )
        grid = coordinator.run_grid(
            [slow_factory(f"slow-{i}") for i in range(4)], WORKLOADS
        )
        assert killed, "no runner was killed"
        assert grid.to_json(canonical=True) == \
            serial.to_json(canonical=True)
        assert not grid.failures
        assert counters(metrics)["shard.runners.lost"] >= 1


class TestDuplicateCommits:
    def test_duplicated_messages_dedup_by_digest(self):
        """At-most-once commit: duplicating every received message
        must move the dedup counter, never double-commit."""
        from repro.integrity.chaos import ChaosTransport

        serial = Harness().run_grid(fake_grid_factories(), WORKLOADS)
        transports = []

        def wrapper(transport, runner_id):
            transport = ChaosTransport(transport, duplicate_every=2)
            transports.append(transport)
            return transport

        metrics = MetricsRegistry()
        coordinator = ShardCoordinator(
            options=RunOptions(shards=2),
            metrics=metrics, transport_wrapper=wrapper,
        )
        grid = coordinator.run_grid(fake_grid_factories(), WORKLOADS)
        assert grid.to_json(canonical=True) == \
            serial.to_json(canonical=True)
        assert any(t.duplicated for t in transports)
        assert counters(metrics).get("shard.cells.deduped", 0) >= 1


class TestCheckpointResume:
    def test_resume_recovers_everything_recomputes_nothing(
        self, tmp_path
    ):
        """ISSUE acceptance: after a completed checkpointed run, a
        resumed coordinator recovers every cell from the journal and
        recomputes none (asserted via shard.* counters)."""
        base = str(tmp_path / "grid.journal")
        first_metrics = MetricsRegistry()
        first = ShardCoordinator(
            options=RunOptions(shards=2, checkpoint=base),
            metrics=first_metrics,
        ).run_grid(fake_grid_factories(), WORKLOADS)
        total = len(WORKLOADS) * 3
        assert counters(first_metrics)["shard.cells.computed"] == total
        # Shard journals merged into the base journal afterwards.
        status = shard_status(base)
        assert [r["entries"] for r in status["journals"]] == [total]

        second_metrics = MetricsRegistry()
        second = ShardCoordinator(
            options=RunOptions(shards=2, checkpoint=base, resume=True),
            metrics=second_metrics,
        ).run_grid(fake_grid_factories(), WORKLOADS)
        seen = counters(second_metrics)
        assert seen["shard.cells.recovered"] == total
        assert "shard.cells.computed" not in seen  # zero recompute
        assert second.to_json(canonical=True) == \
            first.to_json(canonical=True)

    def test_surviving_shard_journals_recovered_on_resume(
        self, tmp_path
    ):
        """A coordinator that died before merging leaves
        ``<base>.shard-k`` journals behind; resume must honour them."""
        import json

        base = str(tmp_path / "grid.journal")
        done = ShardCoordinator(
            options=RunOptions(shards=2, checkpoint=base)
        ).run_grid(fake_grid_factories(), WORKLOADS)
        # Simulate the pre-merge crash state: move the merged journal
        # back out to a shard journal.
        os.replace(base, shard_journal_path(base, 0))
        metrics = MetricsRegistry()
        resumed = ShardCoordinator(
            options=RunOptions(shards=2, checkpoint=base, resume=True),
            metrics=metrics,
        ).run_grid(fake_grid_factories(), WORKLOADS)
        assert resumed.to_json(canonical=True) == \
            done.to_json(canonical=True)
        seen = counters(metrics)
        assert seen["shard.cells.recovered"] == len(WORKLOADS) * 3
        assert "shard.cells.computed" not in seen
        # And the recovered shard journal was re-merged into base.
        with open(base, encoding="utf-8") as handle:
            assert len(json.load(handle)["cells"]) == len(WORKLOADS) * 3

    def test_stale_shard_journals_quarantined_without_resume(
        self, tmp_path
    ):
        """A fresh (non-resume) run must not silently consume another
        run's leftover shard journals."""
        base = str(tmp_path / "grid.journal")
        stale = shard_journal_path(base, 7)
        with open(stale, "w", encoding="utf-8") as handle:
            handle.write("{not a journal")
        ShardCoordinator(
            options=RunOptions(shards=2, checkpoint=base)
        ).run_grid(fake_grid_factories(2), WORKLOADS)
        assert not os.path.exists(stale)
        assert os.path.exists(stale + ".stale")


class TestShardStatus:
    def test_reports_entries_and_corruption(self, tmp_path):
        base = str(tmp_path / "grid.journal")
        ShardCoordinator(
            options=RunOptions(shards=2, checkpoint=base)
        ).run_grid(fake_grid_factories(2), WORKLOADS)
        with open(shard_journal_path(base, 9), "w",
                  encoding="utf-8") as handle:
            handle.write("{corrupt")
        status = shard_status(base)
        states = {r["path"]: r["state"] for r in status["journals"]}
        assert states[base] == "ok"
        assert "corrupt" in states[shard_journal_path(base, 9)]
        assert status["distinct_digests"] == len(WORKLOADS) * 2
