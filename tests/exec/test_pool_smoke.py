"""Process-pool smoke test (the ``exec_pool`` CI job).

Runs a small grid with ``jobs=2`` where one simulator hard-kills its
worker process mid-grid, proving the pool's fault isolation: every
healthy cell completes and the dead cell is recorded, not raised.
"""

import pytest

from exec_fakes import fake_factory
from repro.exec.spec import RunOptions

pytestmark = pytest.mark.exec_pool


def test_pool_survives_crashing_simulator(harness):
    names = ["C-R", "E-I", "M-D"]
    grid = harness.run_grid(
        [fake_factory("fake-ok"), fake_factory("fake-dead", flavor="crash")],
        names, RunOptions(jobs=2),
    )

    assert sorted(grid.ipcs("fake-ok")) == sorted(names)
    assert sorted(grid.ipcs("fake-dead")) == ["C-R", "M-D"]

    [failure] = grid.failures
    assert (failure.simulator, failure.workload) == ("fake-dead", "E-I")
    assert failure.kind == "crash"
    assert failure.attempts == 1
