"""The on-disk result cache: keys, hits, misses, invalidations."""

import json
import os

import pytest

from exec_fakes import fake_factory
from repro.exec.cache import (
    CacheKey,
    ResultCache,
    fingerprint_trace,
    instr_signature,
)
from repro.functional.trace import DynInstr
from repro.exec.spec import RunOptions
from repro.obs.registry import MetricsRegistry
from repro.result import RunStats, SimResult


def clone_instr(dyn, **overrides) -> DynInstr:
    """A copy of one DynInstr with selected constructor fields changed."""
    fields = dict(
        seq=dyn.seq, index=dyn.index, pc=dyn.pc, opcode=dyn.opcode,
        dest=dyn.dest, srcs=dyn.srcs, taken=dyn.taken,
        next_pc=dyn.next_pc, eaddr=dyn.eaddr, size=dyn.size,
        slot=dyn.slot,
    )
    fields.update(overrides)
    return DynInstr(**fields)


def make_key(**overrides) -> CacheKey:
    payload = dict(
        simulator="sim-alpha",
        config_hash="deadbeefdeadbeef",
        workload="C-R",
        trace_fingerprint="abc123",
        package_version="1.0.0",
    )
    payload.update(overrides)
    return CacheKey(**payload)


def make_result() -> SimResult:
    stats = RunStats(branch_mispredicts=3)
    stats.extra["window_size"] = 64
    return SimResult("sim-alpha", "C-R", cycles=100.0, instructions=50,
                     stats=stats, cpi_stack={"base": 1.0, "memory": 1.0})


class TestCacheKey:
    def test_digest_is_stable(self):
        assert make_key().digest() == make_key().digest()

    def test_any_component_changes_digest(self):
        base = make_key().digest()
        assert make_key(simulator="sim-outorder").digest() != base
        assert make_key(config_hash="0" * 16).digest() != base
        assert make_key(workload="M-D").digest() != base
        assert make_key(trace_fingerprint="zzz").digest() != base
        assert make_key(package_version="2.0.0").digest() != base


class TestFingerprint:
    def test_same_trace_same_fingerprint(self, harness):
        trace = harness.workloads.trace("C-R")
        assert fingerprint_trace(trace) == fingerprint_trace(trace)

    def test_different_workloads_differ(self, harness):
        assert fingerprint_trace(harness.workloads.trace("C-R")) != \
            fingerprint_trace(harness.workloads.trace("E-I"))

    def test_prefix_trace_differs(self, harness):
        trace = harness.workloads.trace("C-R")
        assert fingerprint_trace(trace) != fingerprint_trace(trace[:-1])

    def test_unconsumed_content_cannot_split_the_fingerprint(
        self, harness
    ):
        """Two traces every simulator times identically must hash
        identically: ``size`` is never read by a timing model, and
        ``seq``/``index`` restate trace position."""
        trace = harness.workloads.trace("C-R")
        resized = [clone_instr(d, size=d.size + 4) for d in trace]
        assert fingerprint_trace(resized) == fingerprint_trace(trace)

    @pytest.mark.parametrize("field,value", [
        ("pc", 0x7777_0000),
        ("taken", True),
        ("next_pc", 0x7777_0004),
        ("eaddr", 0x1_0000),
        ("slot", 3),
        ("dest", "r31"),
        ("srcs", ("r30", "r29")),
    ])
    def test_every_consumed_field_splits_the_fingerprint(
        self, harness, field, value
    ):
        trace = list(harness.workloads.trace("C-R"))
        middle = len(trace) // 2
        target = trace[middle]
        if getattr(target, field) == value:
            target = trace[middle + 1]
            middle += 1
        assert getattr(target, field) != value, "pick a changing value"
        mutated = list(trace)
        mutated[middle] = clone_instr(target, **{field: value})
        assert fingerprint_trace(mutated) != fingerprint_trace(trace)

    def test_signature_ignores_position_and_size(self, harness):
        dyn = harness.workloads.trace("C-R")[0]
        twin = clone_instr(dyn, seq=9_999, index=9_999, size=dyn.size + 8)
        assert instr_signature(twin) == instr_signature(dyn)


class TestResultCache:
    def test_miss_then_hit_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key()
        assert cache.get(key) is None
        cache.put(key, make_result())
        restored = cache.get(key)
        assert restored is not None
        assert restored.to_dict() == make_result().to_dict()
        assert cache.stats() == {
            "hits": 1, "misses": 1, "invalidations": 0,
            "stores": 1, "entries": 1,
        }

    def test_corrupt_entry_is_invalidated(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key()
        cache.put(key, make_result())
        path = os.path.join(cache.root, key.digest() + ".json")
        with open(path, "w") as handle:
            handle.write("{ not json")
        assert cache.get(key) is None
        assert cache.invalidations == 1
        assert not os.path.exists(path)

    def test_key_mismatch_is_invalidated(self, tmp_path):
        """A digest collision (or hand-edited entry) must not be
        trusted: the full key is compared, not just the filename."""
        cache = ResultCache(tmp_path)
        key = make_key()
        other = make_key(workload="M-D")
        payload = {
            "format": "repro-result-cache/1",
            "key": other.to_dict(),
            "result": make_result().to_dict(),
        }
        path = os.path.join(cache.root, key.digest() + ".json")
        with open(path, "w") as handle:
            json.dump(payload, handle)
        assert cache.get(key) is None
        assert cache.invalidations == 1

    def test_explicit_invalidate(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key()
        cache.put(key, make_result())
        assert cache.invalidate(key)
        assert not cache.invalidate(key)
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_put_overwrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key()
        cache.put(key, make_result())
        updated = make_result()
        updated.cycles = 999.0
        cache.put(key, updated)
        assert cache.get(key).cycles == 999.0
        assert len(cache) == 1

    def test_traffic_mirrored_into_metrics(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=registry)
        key = make_key()
        cache.get(key)
        cache.put(key, make_result())
        cache.get(key)
        cache.invalidate(key)
        counters = registry.snapshot()["counters"]
        assert counters["exec.cache.misses"] == 1
        assert counters["exec.cache.stores"] == 1
        assert counters["exec.cache.hits"] == 1
        assert counters["exec.cache.invalidations"] == 1


class TestEngineCaching:
    def test_second_run_is_all_hits(self, tmp_path, harness):
        from repro.exec.engine import ExperimentEngine

        factories = [fake_factory("fake-a"), fake_factory("fake-b", cpi=3.0)]
        names = ["C-R", "M-D"]
        engine = ExperimentEngine(
            harness.workloads, RunOptions(cache=ResultCache(tmp_path))
        )
        first = engine.run_grid(factories, names)
        assert engine.cache.stats()["misses"] == 4
        second = engine.run_grid(factories, names)
        assert engine.cache.hits == 4
        # Cache hits are stamped with their settling source; only the
        # canonical form (telemetry blanked) is byte-stable.
        assert second.to_json(canonical=True) == \
            first.to_json(canonical=True)
        assert all(
            second.get(sim, name).telemetry.source == "cache"
            for sim in second.simulators() for name in names
        )

    def test_config_change_misses(self, tmp_path, harness):
        from repro.exec.engine import ExperimentEngine

        engine = ExperimentEngine(
            harness.workloads, RunOptions(cache=str(tmp_path))
        )
        engine.run_grid([fake_factory("fake-a", cpi=2.0)], ["C-R"])
        engine.run_grid([fake_factory("fake-a", cpi=9.0)], ["C-R"])
        assert engine.cache.hits == 0
        assert engine.cache.misses == 2

    def test_refresh_recomputes_every_cell(self, tmp_path, harness):
        from repro.exec.engine import ExperimentEngine

        cache = ResultCache(tmp_path)
        ExperimentEngine(
            harness.workloads, RunOptions(cache=cache)
        ).run_grid(
            [fake_factory("fake-a")], ["C-R"]
        )
        refresher = ExperimentEngine(
            harness.workloads, RunOptions(cache=cache, refresh=True)
        )
        refresher.run_grid([fake_factory("fake-a")], ["C-R"])
        assert cache.invalidations == 1
        assert cache.stores == 2
        assert cache.hits == 0

    def test_refresh_cell_replaces_in_grid(self, tmp_path, harness):
        from repro.exec.engine import ExperimentEngine

        engine = ExperimentEngine(
            harness.workloads, RunOptions(cache=str(tmp_path))
        )
        factory = fake_factory("fake-a")
        grid = engine.run_grid([factory], ["C-R"])
        before = grid.get("fake-a", "C-R")
        after = engine.refresh_cell(grid, factory, "C-R")
        assert grid.get("fake-a", "C-R") is after
        assert after is not before
        # Telemetry is volatile (wall time, KIPS): the refreshed cell
        # must measure the same thing, not cost the same.
        measured = {k: v for k, v in after.to_dict().items()
                    if k != "telemetry"}
        assert measured == {k: v for k, v in before.to_dict().items()
                            if k != "telemetry"}
        assert engine.cache.stores == 2


class TestGc:
    def put_at(self, cache, key, mtime):
        """Store an entry and pin its mtime (the recency gc reads)."""
        cache.put(key, make_result())
        path = os.path.join(cache.root, key.digest() + ".json")
        os.utime(path, (mtime, mtime))
        return path

    def test_age_pass_removes_only_stale_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        stale = make_key(workload="C-R")
        fresh = make_key(workload="M-D")
        self.put_at(cache, stale, mtime=0.0)
        self.put_at(cache, fresh, mtime=900.0)
        summary = cache.gc(max_age_s=500.0, now=1000.0)
        assert summary["removed"] == [stale.digest()]
        assert summary["kept"] == 1
        assert summary["reclaimed_bytes"] > 0
        assert cache.get(fresh) is not None

    def test_live_set_is_exempt_from_every_criterion(self, tmp_path):
        cache = ResultCache(tmp_path)
        live = make_key(workload="C-R")
        dead = make_key(workload="M-D")
        self.put_at(cache, live, mtime=0.0)
        self.put_at(cache, dead, mtime=0.0)
        summary = cache.gc(max_age_s=1.0, live=[live], max_bytes=0,
                           now=1000.0)
        assert summary["removed"] == [dead.digest()]
        assert cache.get(live) is not None

    def test_live_accepts_raw_digest_strings(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key()
        self.put_at(cache, key, mtime=0.0)
        cache.gc(max_age_s=1.0, live=[key.digest()], now=1000.0)
        assert len(cache) == 1

    def test_size_budget_evicts_least_recently_used_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        oldest = make_key(workload="C-R")
        middle = make_key(workload="M-D")
        newest = make_key(workload="E-I")
        self.put_at(cache, oldest, mtime=100.0)
        self.put_at(cache, middle, mtime=200.0)
        path = self.put_at(cache, newest, mtime=300.0)
        entry_size = os.path.getsize(path)
        summary = cache.gc(max_bytes=entry_size * 2, now=1000.0)
        assert summary["removed"] == [oldest.digest()]
        assert cache.get(newest) is not None
        assert cache.get(middle) is not None

    def test_a_hit_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path)
        touched = make_key(workload="C-R")
        untouched = make_key(workload="M-D")
        path = self.put_at(cache, touched, mtime=100.0)
        self.put_at(cache, untouched, mtime=200.0)
        assert cache.get(touched) is not None  # refreshes mtime to now
        entry_size = os.path.getsize(path)
        summary = cache.gc(max_bytes=entry_size, now=1000.0)
        assert summary["removed"] == [untouched.digest()]

    def test_orphaned_tmp_files_age_out(self, tmp_path):
        cache = ResultCache(tmp_path)
        orphan = os.path.join(cache.root, "deadbeef.tmp")
        with open(orphan, "w") as handle:
            handle.write("interrupted write")
        os.utime(orphan, (0.0, 0.0))
        summary = cache.gc(max_age_s=1.0, now=1000.0)
        assert not os.path.exists(orphan)
        assert summary["reclaimed_bytes"] > 0

    def test_gc_does_not_count_as_invalidation(self, tmp_path):
        """GC removals are capacity management, not distrust: the
        invalidations counter (untrustworthy entries) must not move."""
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=registry)
        self.put_at(cache, make_key(), mtime=0.0)
        cache.gc(max_age_s=1.0, now=1000.0)
        counters = registry.snapshot()["counters"]
        assert counters.get("exec.cache.invalidations", 0) == 0
        assert counters["exec.cache.gc_removed"] == 1
        assert counters["exec.cache.gc_bytes_reclaimed"] > 0

    def test_no_criteria_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.put_at(cache, make_key(), mtime=0.0)
        summary = cache.gc(now=1000.0)
        assert summary == {"removed": [], "reclaimed_bytes": 0, "kept": 1}

    def test_empty_live_set_means_nothing_is_exempt(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key()
        self.put_at(cache, key, mtime=500.0)
        summary = cache.gc(live=[], max_bytes=0, now=1000.0)
        assert summary["removed"] == [key.digest()]
        assert summary["kept"] == 0

    def test_live_bytes_count_once_toward_budget(self, tmp_path):
        """Live entries consume budget (they are real bytes on disk)
        but exactly once each, even when a member is passed both as a
        CacheKey and as its raw digest."""
        cache = ResultCache(tmp_path)
        live = make_key(workload="C-R")
        oldest = make_key(workload="M-D")
        newest = make_key(workload="E-I")
        live_path = self.put_at(cache, live, mtime=50.0)
        self.put_at(cache, oldest, mtime=100.0)
        newest_path = self.put_at(cache, newest, mtime=200.0)
        budget = os.path.getsize(live_path) + os.path.getsize(newest_path)
        summary = cache.gc(
            max_bytes=budget, live=[live, live.digest()], now=1000.0
        )
        # Counted once, the live entry plus the newest evictable one
        # fit the budget after dropping the oldest; counted twice, the
        # budget would (wrongly) force the newest out as well.
        assert summary["removed"] == [oldest.digest()]
        assert cache.get(live) is not None
        assert cache.get(newest) is not None

    def test_gc_racing_writer_does_not_evict_fresh_entry(
        self, tmp_path, monkeypatch
    ):
        """A concurrent put that replaces a stale entry between the gc
        scan and the unlink must win: the fresh result survives."""
        cache = ResultCache(tmp_path)
        key = make_key()
        path = self.put_at(cache, key, mtime=0.0)
        real = cache._unlink_if_unchanged

        def racing(victim, seen):
            if victim == path:
                cache.put(key, make_result())  # the writer lands first
            return real(victim, seen)

        monkeypatch.setattr(cache, "_unlink_if_unchanged", racing)
        summary = cache.gc(max_age_s=1.0, now=1000.0)
        assert summary["removed"] == []
        assert cache.get(key) is not None

    def test_replaced_entry_is_not_unlinked(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key()
        path = self.put_at(cache, key, mtime=0.0)
        seen = os.stat(path)
        cache.put(key, make_result())  # replaced after the scan stat
        assert cache._unlink_if_unchanged(path, seen) is False
        assert os.path.exists(path)
