"""Property tests for the ExperimentSpec / RunOptions request API.

The canonical-JSON round-trip is the contract every entry point
(Python API, CLI, HTTP service) leans on: a spec that survives
``to_dict -> json -> from_dict`` unchanged is a spec the service can
hash, dedup, persist, and replay byte-identically.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.spec import (
    ExperimentSpec,
    RunOptions,
    SpecError,
    fold_legacy_kwargs,
)

# -- strategies ------------------------------------------------------------

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
    max_size=12,
)

_run_options = st.builds(
    RunOptions,
    jobs=st.integers(min_value=1, max_value=8),
    cache=st.none() | _names,
    timeout=st.none() | st.floats(min_value=0.5, max_value=300.0,
                                  allow_nan=False),
    retries=st.integers(min_value=0, max_value=3),
    refresh=st.booleans(),
    checkpoint=st.none() | _names,
    resume=st.booleans(),
    ledger=st.none() | _names,
    live_progress=st.booleans(),
    shards=st.integers(min_value=1, max_value=4),
    sanitize=st.booleans(),
    strict=st.booleans(),
    watchdog_s=st.none() | st.floats(min_value=0.5, max_value=60.0,
                                     allow_nan=False),
    blockcache=st.none() | st.booleans(),
    escalation_grace_s=st.floats(min_value=0.0, max_value=10.0,
                                 allow_nan=False),
)

_specs = st.builds(
    ExperimentSpec,
    simulators=st.lists(_names, min_size=1, max_size=3,
                        unique=True).map(tuple),
    workloads=st.lists(_names, min_size=1, max_size=3,
                       unique=True).map(tuple),
    options=_run_options,
)


# -- canonical round-trip --------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(_run_options)
def test_run_options_canonical_round_trip(options):
    payload = json.loads(options.canonical_json())
    rebuilt = RunOptions.from_dict(payload)
    assert rebuilt == options
    assert rebuilt.canonical_json() == options.canonical_json()


@settings(max_examples=60, deadline=None)
@given(_specs)
def test_spec_canonical_round_trip(spec):
    payload = json.loads(spec.canonical_json())
    rebuilt = ExperimentSpec.from_dict(payload)
    assert rebuilt == spec
    assert rebuilt.canonical_json() == spec.canonical_json()
    assert rebuilt.dedup_key() == spec.dedup_key()


@settings(max_examples=60, deadline=None)
@given(
    _specs,
    st.integers(min_value=2, max_value=8),
    _names,
    st.booleans(),
)
def test_dedup_key_ignores_operational_options(spec, jobs, path, live):
    """Two requests differing only in *how* they run (parallelism,
    cache/checkpoint paths, progress rendering) must hash the same —
    that is what lets the service charge N identical submissions one
    simulation."""
    operational = spec.options.replace(
        jobs=jobs, cache=path, checkpoint=path, ledger=path,
        live_progress=live, refresh=not spec.options.refresh,
        resume=not spec.options.resume,
    )
    twin = dataclasses.replace(spec, options=operational)
    assert twin.dedup_key() == spec.dedup_key()


@settings(max_examples=60, deadline=None)
@given(_specs)
def test_dedup_key_tracks_measurement_options(spec):
    """Options that change what a grid *measures* must change the
    hash: a sanitized run is not the same experiment."""
    flipped = dataclasses.replace(
        spec,
        options=spec.options.replace(sanitize=not spec.options.sanitize),
    )
    assert flipped.dedup_key() != spec.dedup_key()


# -- validation at the boundary --------------------------------------------

def test_unknown_spec_key_rejected():
    with pytest.raises(SpecError, match="unknown ExperimentSpec key"):
        ExperimentSpec.from_dict({
            "simulators": ["sim-outorder"], "workloads": ["C-Ca"],
            "parallelism": 4,
        })


def test_unknown_options_key_rejected():
    with pytest.raises(SpecError, match="unknown RunOptions key"):
        RunOptions.from_dict({"jobs": 2, "n_workers": 4})


def test_empty_grid_rejected():
    with pytest.raises(SpecError, match="at least one simulator"):
        ExperimentSpec((), ("C-Ca",))
    with pytest.raises(SpecError, match="at least one workload"):
        ExperimentSpec(("sim-outorder",), ())


def test_out_of_range_options_rejected():
    with pytest.raises(SpecError):
        RunOptions(jobs=0)
    with pytest.raises(SpecError):
        RunOptions(timeout=-1.0)
    with pytest.raises(SpecError):
        RunOptions(retries=-1)


def test_unknown_simulator_named_at_resolution():
    spec = ExperimentSpec(("no-such-sim",), ("C-Ca",))
    with pytest.raises(SpecError, match="unknown simulator"):
        spec.factories()


# -- merged_over / trimmed -------------------------------------------------

def test_merged_over_explicit_fields_win():
    base = RunOptions(jobs=4, cache="warm", retries=2)
    call = RunOptions(jobs=2)
    merged = call.merged_over(base)
    assert merged.jobs == 2            # explicitly set: call wins
    assert merged.cache == "warm"      # left default: base shows
    assert merged.retries == 2


def test_trimmed_keeps_only_single_cell_options():
    options = RunOptions(jobs=8, shards=3, cache="x", sanitize=True,
                         strict=True, watchdog_s=5.0)
    single = options.trimmed()
    assert single.sanitize and single.strict
    assert single.watchdog_s == 5.0
    assert single.jobs == 1 and single.shards == 1
    assert single.cache is None


# -- the legacy shim -------------------------------------------------------

def test_fold_legacy_kwargs_warns_once_and_applies():
    with pytest.warns(DeprecationWarning, match="jobs") as caught:
        folded = fold_legacy_kwargs(
            RunOptions(retries=1), {"jobs": 4, "refresh": True},
            allowed=("jobs", "refresh"), owner="run_grid",
        )
    assert len(caught) == 1
    assert folded.jobs == 4 and folded.refresh and folded.retries == 1


def test_fold_legacy_kwargs_unknown_keyword_is_type_error():
    with pytest.raises(TypeError, match="unexpected keyword"):
        fold_legacy_kwargs(
            None, {"n_jobs": 4}, allowed=("jobs",), owner="run_grid",
        )


def test_fold_legacy_kwargs_no_legacy_is_silent():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        folded = fold_legacy_kwargs(
            None, {}, allowed=("jobs",), owner="run_grid",
        )
    assert folded == RunOptions()
