"""Shared fixtures for the execution-engine tests."""

import pytest


@pytest.fixture(scope="module")
def harness():
    from repro.validation.harness import Harness

    return Harness()
