"""The parallel execution engine: determinism, fault isolation,
timeouts, and the retry budget."""

import os

import pytest

from exec_fakes import FakeConfig, FakeSim, fake_factory
from repro.exec.engine import ExperimentEngine
from repro.exec.spec import RunOptions
from repro.obs.observer import Instrumentation
from repro.obs.registry import MetricsRegistry
from repro.validation.harness import ResultGrid

QUICK = ["C-R", "E-I"]


class TestDeterminism:
    def test_parallel_matches_serial_with_fakes(self, harness):
        factories = [fake_factory("fake-a"), fake_factory("fake-b", cpi=3.0)]
        names = ["C-R", "E-I", "M-D"]
        serial = harness.run_grid(factories, names)
        parallel = harness.run_grid(factories, names, RunOptions(jobs=4))
        assert parallel.to_json(canonical=True) == \
            serial.to_json(canonical=True)
        assert parallel.simulators() == serial.simulators()
        assert parallel.workloads() == serial.workloads()

    def test_parallel_matches_serial_with_real_sims(self, harness):
        """The acceptance bar: a ``jobs=4`` run of real simulators with
        CPI-stack instrumentation serialises byte-identically to the
        serial run (``canonical=True`` blanks only the wall-clock
        provenance fields)."""
        from repro.core.siminitial import make_sim_initial
        from repro.simulators.refmachine import make_native_machine

        factories = [make_native_machine, make_sim_initial]
        serial = harness.run_grid(
            factories, QUICK, instrumentation=Instrumentation()
        )
        parallel = harness.run_grid(
            factories, QUICK, RunOptions(jobs=4),
            instrumentation=Instrumentation(),
        )
        assert parallel.to_json(canonical=True) == \
            serial.to_json(canonical=True)
        for simulator in serial.simulators():
            stack = parallel.get(simulator, "C-R").cpi_stack
            assert stack and stack == serial.get(simulator, "C-R").cpi_stack


class TestFaultIsolation:
    def test_raising_cell_becomes_exception_failure(self, harness):
        grid = harness.run_grid(
            [fake_factory("fake-ok"), fake_factory("fake-bad", "raise")],
            QUICK, RunOptions(jobs=2),
        )
        assert sorted(grid.ipcs("fake-ok")) == sorted(QUICK)
        assert list(grid.ipcs("fake-bad")) == ["C-R"]
        [failure] = grid.failures
        assert (failure.simulator, failure.workload) == ("fake-bad", "E-I")
        assert failure.kind == "exception"
        assert "deliberately failed" in failure.message
        assert failure.attempts == 1

    def test_crashing_worker_becomes_crash_failure(self, harness):
        grid = harness.run_grid(
            [fake_factory("fake-ok"), fake_factory("fake-dead", "crash")],
            QUICK, RunOptions(jobs=2),
        )
        assert sorted(grid.ipcs("fake-ok")) == sorted(QUICK)
        [failure] = grid.failures
        assert failure.kind == "crash"
        assert "17" in failure.message

    def test_hanging_cell_is_terminated_on_timeout(self, harness):
        grid = harness.run_grid(
            [fake_factory("fake-ok"), fake_factory("fake-hung", "hang")],
            QUICK, RunOptions(jobs=2, timeout=1.0),
        )
        assert sorted(grid.ipcs("fake-ok")) == sorted(QUICK)
        [failure] = grid.failures
        assert failure.kind == "timeout"
        assert failure.elapsed_s >= 0.9
        assert failure.elapsed_s < FakeSim.HANG_SECONDS

    def test_expired_worker_dumps_stuck_snapshot(self, harness):
        """SIGUSR1 escalation: a wall-clock-expired worker ships a
        SimulationStuck diagnosis home before the parent kills it."""
        registry = MetricsRegistry()
        engine = ExperimentEngine(
            harness.workloads, RunOptions(jobs=2, timeout=1.0),
            metrics=registry,
        )
        grid = engine.run_grid(
            [fake_factory("fake-ok"), fake_factory("fake-hung", "hang")],
            QUICK,
        )
        assert sorted(grid.ipcs("fake-ok")) == sorted(QUICK)
        [failure] = grid.failures
        assert failure.kind == "timeout"
        assert "SIGUSR1" in failure.message
        assert failure.snapshot is not None
        assert "escalated" in failure.snapshot["detail"]
        # The dump arrived over the pipe, not after HANG_SECONDS.
        assert failure.elapsed_s < FakeSim.HANG_SECONDS
        counters = registry.snapshot()["counters"]
        assert counters["exec.cells.escalated"] == 1

    def test_deaf_worker_is_still_terminated(self, harness):
        """A worker that blocks SIGUSR1 gets the grace period, no
        diagnosis, and the kill — escalation must never let a hung
        cell outlive its timeout by more than the grace."""
        import signal as signal_module
        import time as time_module

        class DeafSim(FakeSim):
            def run_trace(self, trace, workload):
                if workload == self.FAIL_WORKLOAD:
                    signal_module.pthread_sigmask(
                        signal_module.SIG_BLOCK,
                        {signal_module.SIGUSR1},
                    )
                return super().run_trace(trace, workload)

        engine = ExperimentEngine(
            harness.workloads,
            RunOptions(jobs=2, timeout=0.5, escalation_grace_s=0.2),
        )
        started = time_module.perf_counter()
        grid = engine.run_grid(
            [lambda: DeafSim(FakeConfig(name="deaf", flavor="hang"))],
            ["E-I"],
        )
        elapsed = time_module.perf_counter() - started
        [failure] = grid.failures
        assert failure.kind == "timeout"
        assert failure.snapshot is None
        assert "SIGUSR1" not in failure.message
        assert elapsed < FakeSim.HANG_SECONDS / 2

    def test_inprocess_engine_isolates_exceptions(self, harness):
        engine = ExperimentEngine(harness.workloads)
        grid = engine.run_grid(
            [fake_factory("fake-ok"), fake_factory("fake-bad", "raise")],
            QUICK,
        )
        assert sorted(grid.ipcs("fake-ok")) == sorted(QUICK)
        [failure] = grid.failures
        assert failure.kind == "exception"
        assert "deliberately failed" in failure.message

    def test_failures_survive_json_round_trip(self, harness):
        grid = harness.run_grid(
            [fake_factory("fake-bad", "raise")], ["E-I"],
            RunOptions(jobs=2),
        )
        restored = ResultGrid.from_json(grid.to_json())
        assert restored.failures == grid.failures


class TestRetries:
    def test_exhausted_retries_count_attempts(self, harness):
        registry = MetricsRegistry()
        engine = ExperimentEngine(
            harness.workloads, RunOptions(jobs=2, retries=2),
            metrics=registry,
        )
        grid = engine.run_grid([fake_factory("fake-bad", "raise")], ["E-I"])
        [failure] = grid.failures
        assert failure.attempts == 3
        counters = registry.snapshot()["counters"]
        assert counters["exec.cells.retried"] == 2
        assert counters["exec.cells.failed"] == 1

    def test_flaky_cell_succeeds_within_budget(self, tmp_path, harness):
        """A cell that kills its worker on the first attempt and runs
        clean on the second must produce a result, not a failure."""
        marker = tmp_path / "first-attempt"

        class FlakyOnce(FakeSim):
            def run_trace(self, trace, workload):
                if not marker.exists():
                    marker.write_text("started")
                    os._exit(3)
                return super().run_trace(trace, workload)

        registry = MetricsRegistry()
        engine = ExperimentEngine(
            harness.workloads, RunOptions(jobs=2, retries=1),
            metrics=registry,
        )
        grid = engine.run_grid(
            [lambda: FlakyOnce(FakeConfig(name="flaky"))], ["C-R"]
        )
        assert grid.failures == []
        assert grid.get("flaky", "C-R").stats.extra["fake_marker"] > 0
        counters = registry.snapshot()["counters"]
        assert counters["exec.cells.retried"] == 1
        assert counters["exec.cells.launched"] == 2

    def test_inprocess_retry_budget(self, harness):
        calls = []

        class FlakyInProcess(FakeSim):
            def run_trace(self, trace, workload):
                if not calls:
                    calls.append(workload)
                    raise RuntimeError("transient")
                return super().run_trace(trace, workload)

        engine = ExperimentEngine(harness.workloads, RunOptions(retries=1))
        grid = engine.run_grid(
            [lambda: FlakyInProcess(FakeConfig(name="flaky"))], ["C-R"]
        )
        assert grid.failures == []
        assert len(calls) == 1
        assert grid.get("flaky", "C-R").instructions > 0
