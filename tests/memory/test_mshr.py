"""Tests for the miss address file (MAF/MSHR) with combining."""

from hypothesis import given, strategies as st

from repro.memory.mshr import MafConfig, MissAddressFile


def test_fresh_allocation():
    maf = MissAddressFile()
    outcome = maf.present_miss(10.0, 0x1000)
    assert outcome.start_time == 10.0
    assert outcome.combined_fill is None
    assert not outcome.stalled


def test_combining_same_block():
    maf = MissAddressFile()
    maf.present_miss(0.0, 0x1000)
    maf.record_fill(0x1000, 100.0)
    outcome = maf.present_miss(10.0, 0x1000)
    assert outcome.combined_fill == 100.0
    assert maf.stats.combines == 1


def test_completed_fill_not_combined():
    maf = MissAddressFile()
    maf.record_fill(0x1000, 100.0)
    outcome = maf.present_miss(200.0, 0x1000)
    assert outcome.combined_fill is None


def test_full_maf_stalls_until_earliest_fill():
    maf = MissAddressFile(MafConfig(entries=2))
    maf.record_fill(0x1000, 50.0)
    maf.record_fill(0x2000, 80.0)
    outcome = maf.present_miss(10.0, 0x3000)
    assert outcome.stalled
    assert outcome.start_time == 50.0
    assert maf.stats.full_stalls == 1


def test_entries_free_over_time():
    maf = MissAddressFile(MafConfig(entries=2))
    maf.record_fill(0x1000, 50.0)
    maf.record_fill(0x2000, 80.0)
    outcome = maf.present_miss(60.0, 0x3000)  # 0x1000 has filled
    assert not outcome.stalled


def test_outstanding_count():
    maf = MissAddressFile()
    maf.record_fill(0x1000, 50.0)
    maf.record_fill(0x2000, 80.0)
    assert maf.outstanding(0.0) == 2
    assert maf.outstanding(60.0) == 1
    assert maf.outstanding(100.0) == 0


def test_inflight_blocks():
    maf = MissAddressFile()
    maf.record_fill(0x1000, 50.0)
    maf.record_fill(0x2000, 80.0)
    assert set(maf.inflight_blocks(60.0)) == {0x2000}


@given(st.lists(st.tuples(st.floats(0, 1e6), st.integers(0, 63)),
                max_size=200))
def test_outstanding_never_exceeds_entries(events):
    """However misses arrive, busy entries stay within capacity if the
    caller respects start_time."""
    maf = MissAddressFile(MafConfig(entries=8))
    time = 0.0
    for delta, block_index in events:
        time += abs(delta) % 100
        block = block_index * 64
        outcome = maf.present_miss(time, block)
        if outcome.combined_fill is None:
            start = max(time, outcome.start_time)
            maf.record_fill(block, start + 50)
            assert maf.outstanding(start) <= 8
