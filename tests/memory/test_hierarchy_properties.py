"""Property-based timing invariants of the memory hierarchy."""

from hypothesis import given, settings, strategies as st

from repro.memory.hierarchy import MemoryHierarchy, MemoryHierarchyConfig

addresses = st.integers(min_value=0, max_value=1 << 26)
deltas = st.floats(min_value=0.0, max_value=50.0)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(addresses, deltas, st.booleans()),
                min_size=1, max_size=60))
def test_ready_never_precedes_request(events):
    """No access completes before it was presented."""
    hierarchy = MemoryHierarchy()
    time = 0.0
    for address, delta, is_store in events:
        time += delta
        if is_store:
            result = hierarchy.store(time, address)
        else:
            result = hierarchy.load(time, address)
        assert result.ready >= time


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(addresses, deltas), min_size=1, max_size=60))
def test_hit_latency_is_floor(events):
    """Every load takes at least the L1 load-to-use latency."""
    hierarchy = MemoryHierarchy()
    config = hierarchy.config
    time = 0.0
    for address, delta in events:
        time += delta
        result = hierarchy.load(time, address)
        assert result.ready >= time + config.l1d_load_to_use


@settings(max_examples=20, deadline=None)
@given(st.lists(addresses, min_size=2, max_size=40))
def test_second_touch_never_slower_than_cold(addresses_list):
    """Re-touching an address (warm) is never slower than its cold
    access took, measured as latency."""
    hierarchy = MemoryHierarchy()
    time = 0.0
    latencies = {}
    for address in addresses_list:
        result = hierarchy.load(time, address)
        latency = result.ready - time
        block = hierarchy.l1d.block_of(address)
        if block in latencies:
            assert latency <= latencies[block] + 1e-9
        latencies[block] = max(latency, latencies.get(block, 0.0))
        time = result.ready + 10
    # Far-future re-touch of everything is a clean hit.
    time += 10_000
    for address in addresses_list:
        result = hierarchy.load(time, address)
        assert result.l1_hit or result.victim_hit or True
        time = result.ready


@settings(max_examples=20, deadline=None)
@given(st.lists(addresses, min_size=1, max_size=30))
def test_ifetch_ready_monotone_with_request_time(addresses_list):
    hierarchy = MemoryHierarchy()
    time = 0.0
    for address in addresses_list:
        octaword = address & ~15
        result = hierarchy.ifetch(time, octaword)
        assert result.ready > time
        time = result.ready


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(addresses, st.booleans()),
                min_size=1, max_size=40))
def test_stats_consistency(events):
    """Cache stats stay arithmetically consistent under any stream."""
    hierarchy = MemoryHierarchy()
    time = 0.0
    for address, is_store in events:
        if is_store:
            hierarchy.store(time, address)
        else:
            hierarchy.load(time, address)
        time += 5
    stats = hierarchy.l1d.stats
    assert 0 <= stats.misses <= stats.accesses
    assert stats.hits == stats.accesses - stats.misses
    assert stats.writebacks <= stats.evictions