"""MAF occupancy accounting: the regression suite locking in the PR 2
``present_miss`` fix and the integrity-layer guards around it."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.memory.mshr import MafConfig, MissAddressFile


class TestOccupancyAt:
    def test_counts_only_active_windows(self):
        maf = MissAddressFile()
        maf.record_fill(0x1000, 100.0, start=10.0)
        maf.record_fill(0x2000, 150.0, start=50.0)
        assert maf.occupancy_at(0.0) == 0    # nothing issued yet
        assert maf.occupancy_at(10.0) == 1   # first active
        assert maf.occupancy_at(60.0) == 2   # both active
        assert maf.occupancy_at(120.0) == 1  # first filled
        assert maf.occupancy_at(150.0) == 0  # fill boundary is exclusive

    def test_fills_without_starts_are_not_counted(self):
        maf = MissAddressFile()
        maf.record_fill(0x1000, 100.0)
        assert maf.occupancy_at(50.0) == 0

    def test_backdated_full_stall_does_not_overcount(self):
        """A stalled allocation backdates its start to when a slot
        frees; the *physical* occupancy must never exceed capacity even
        while the file tracks entries+1 fills."""
        maf = MissAddressFile(MafConfig(entries=2))
        maf.record_fill(0x1000, 50.0, start=0.0)
        maf.record_fill(0x2000, 80.0, start=0.0)
        outcome = maf.present_miss(10.0, 0x3000)
        assert outcome.stalled and outcome.start_time == 50.0
        maf.record_fill(0x3000, 130.0, start=outcome.start_time)
        assert len(maf._inflight) == 3  # tracked fills exceed entries...
        for when in (0.0, 10.0, 49.0, 50.0, 79.0, 80.0, 129.0):
            assert maf.occupancy_at(when) <= 2  # ...occupancy never does
        assert maf.peak_occupancy <= 2


class TestPeakOccupancy:
    def test_respecting_start_time_stays_within_capacity(self):
        maf = MissAddressFile(MafConfig(entries=2))
        now = 0.0
        for index in range(10):
            block = 0x40 * (index + 1)
            outcome = maf.present_miss(now, block)
            start = max(now, outcome.start_time)
            maf.record_fill(block, start + 50.0, start=start)
            now = start + 1.0
        assert maf.peak_occupancy <= 2

    def test_oversubscription_is_visible_in_the_peak(self):
        """The PR 2 bug shape: allocations admitted while full."""
        maf = MissAddressFile(MafConfig(entries=2))
        for index in range(5):
            maf.record_fill(0x40 * (index + 1), 100.0, start=0.0)
        assert maf.peak_occupancy == 5

    @given(st.lists(st.tuples(st.floats(0, 1e6), st.integers(0, 63)),
                    max_size=200))
    def test_peak_never_exceeds_entries_for_honest_callers(self, events):
        maf = MissAddressFile(MafConfig(entries=8))
        time = 0.0
        for delta, block_index in events:
            time += abs(delta) % 100
            block = block_index * 64
            outcome = maf.present_miss(time, block)
            if outcome.combined_fill is None:
                start = max(time, outcome.start_time)
                maf.record_fill(block, start + 50, start=start)
        assert maf.peak_occupancy <= 8


class TestOccupancyReplayProperty:
    """``occupancy_at`` against first-principles interval replay.

    The MAF's incremental accounting (dict of fills, dict of starts,
    peak updated at allocation instants) must agree with the obvious
    brute force: keep every (start, fill) window and count the ones
    covering the probe time.  Random interleaved allocate/fill streams
    drive both representations through overwrites, combines, full-MAF
    backdating, and opportunistic pruning.
    """

    @given(st.lists(
        st.tuples(
            st.integers(0, 15),
            st.floats(0.0, 1_000.0, allow_nan=False),
            st.floats(0.0, 500.0, allow_nan=False),
        ),
        min_size=1, max_size=60,
    ))
    def test_occupancy_matches_interval_replay(self, stream):
        # 16 distinct blocks on an 8-entry file: the pruning threshold
        # (entries * 4) is unreachable, so no window ever disappears
        # and every probe time is fair game.
        maf = MissAddressFile()
        windows = {}
        for block_index, start, duration in stream:
            block = block_index * 64
            maf.record_fill(block, start + duration, start=start)
            windows[block] = (start, start + duration)
        probes = {0.0}
        for start, fill in windows.values():
            probes.update((
                start, fill, (start + fill) / 2.0,
                start - 1e-3, fill + 1e-3,
            ))
        for when in probes:
            expected = sum(
                1 for s, f in windows.values() if s <= when < f
            )
            assert maf.occupancy_at(when) == expected

    @given(st.lists(
        st.tuples(
            st.integers(0, 63),
            st.floats(0.0, 80.0, allow_nan=False),
            st.floats(1.0, 200.0, allow_nan=False),
        ),
        max_size=80,
    ))
    def test_peak_is_supremum_of_replayed_occupancy(self, stream):
        """``peak_occupancy`` equals the supremum of the brute-force
        occupancy over allocation instants.  Occupancy only steps up at
        a request start, so the supremum over all time is attained at
        one; an honest caller on a 4-entry file also never pushes it
        past capacity."""
        maf = MissAddressFile(MafConfig(entries=4))
        windows = {}
        now = 0.0
        supremum = 0
        for block_index, delta, latency in stream:
            now += delta
            block = block_index * 64
            outcome = maf.present_miss(now, block)
            if outcome.combined_fill is not None:
                continue
            start = max(now, outcome.start_time)
            maf.record_fill(block, start + latency, start=start)
            windows[block] = (start, start + latency)
            supremum = max(supremum, sum(
                1 for s, f in windows.values() if s <= start < f
            ))
        assert maf.peak_occupancy == supremum
        assert supremum <= 4


class TestRecordFillGuards:
    def test_nan_fill_time_rejected(self):
        maf = MissAddressFile()
        with pytest.raises(ValueError) as excinfo:
            maf.record_fill(0x1000, math.nan)
        assert "corrupt" in str(excinfo.value)

    def test_infinite_fill_time_rejected(self):
        maf = MissAddressFile()
        with pytest.raises(ValueError):
            maf.record_fill(0x1000, math.inf)

    def test_nan_start_rejected(self):
        maf = MissAddressFile()
        with pytest.raises(ValueError):
            maf.record_fill(0x1000, 100.0, start=math.nan)

    def test_fill_before_start_rejected(self):
        maf = MissAddressFile()
        with pytest.raises(ValueError):
            maf.record_fill(0x1000, 10.0, start=20.0)

    def test_rejected_fill_leaves_no_entry(self):
        maf = MissAddressFile()
        with pytest.raises(ValueError):
            maf.record_fill(0x1000, math.nan)
        assert maf.occupancy_at(0.0) == 0
        assert maf.outstanding(0.0) == 0


class TestExpiryBookkeeping:
    def test_pruning_keeps_maps_in_sync(self):
        maf = MissAddressFile(MafConfig(entries=2))
        # Enough stale fills to trigger the opportunistic pruning.
        for index in range(12):
            maf.record_fill(0x40 * (index + 1), float(index + 1),
                            start=float(index))
        maf.present_miss(1e9, 0x9999)  # everything has long filled
        assert len(maf._inflight) <= 2
        assert set(maf._starts) <= set(maf._inflight)
        assert maf.outstanding(1e9) >= 0
