"""Tests for the composed memory hierarchy."""

from dataclasses import replace

from repro.memory.hierarchy import MemoryHierarchy, MemoryHierarchyConfig
from repro.memory.mshr import MafConfig
from repro.memory.tlb import PageWalkModel


def _warm_tlb_hierarchy(**kwargs):
    hierarchy = MemoryHierarchy(MemoryHierarchyConfig(**kwargs))
    return hierarchy


class TestLoadPath:
    def test_l1_hit_latency(self):
        h = _warm_tlb_hierarchy()
        h.load(0.0, 0x1000)            # warm TLB + caches
        result = h.load(1000.0, 0x1000)
        assert result.l1_hit
        assert result.ready == 1000.0 + h.config.l1d_load_to_use

    def test_fp_load_extra_cycle(self):
        h = _warm_tlb_hierarchy()
        h.load(0.0, 0x1000)
        result = h.load(1000.0, 0x1000, fp=True)
        assert result.ready == 1000.0 + h.config.l1d_load_to_use + 1

    def test_latency_ordering(self):
        """L1 hit < L2 hit < DRAM."""
        h = _warm_tlb_hierarchy()
        dram = h.load(0.0, 0x100000)
        l2 = h.load(5000.0, 0x100000 + 40 * 64 * 512)  # same L1 set region
        h.load(10000.0, 0x1000)
        l1 = h.load(20000.0, 0x1000)
        l1_latency = l1.ready - 20000.0
        dram_latency = dram.ready - 0.0
        assert l1_latency < dram_latency
        assert not dram.l1_hit

    def test_l2_hit_faster_than_dram(self):
        h = _warm_tlb_hierarchy()
        first = h.load(0.0, 0x40000)           # DRAM fill (into L2 too)
        h.l1d.invalidate(0x40000)              # drop from L1 only
        second = h.load(5000.0, 0x40000)       # L2 hit now
        assert second.l2_hit
        assert (second.ready - 5000.0) < (first.ready - 0.0)

    def test_victim_buffer_recovers_evictions(self):
        h = _warm_tlb_hierarchy()
        base = 0x1000
        way_span = 512 * 64  # L1 sets * block
        # Fill one set beyond its two ways.
        h.load(0.0, base)
        h.load(100.0, base + way_span)
        h.load(200.0, base + 2 * way_span)  # evicts `base` into VB
        result = h.load(5000.0, base)
        assert result.victim_hit
        expected = 5000.0 + h.config.l1d_load_to_use + (
            h.victim.config.hit_penalty
        )
        assert result.ready == expected

    def test_no_victim_buffer_when_disabled(self):
        h = _warm_tlb_hierarchy(victim_buffer_enabled=False)
        assert h.victim is None
        base = 0x1000
        way_span = 512 * 64
        h.load(0.0, base)
        h.load(100.0, base + way_span)
        h.load(200.0, base + 2 * way_span)
        result = h.load(5000.0, base)
        assert not result.victim_hit
        assert not result.l1_hit

    def test_second_access_waits_for_inflight_fill(self):
        h = _warm_tlb_hierarchy()
        first = h.load(0.0, 0x200000)
        second = h.load(1.0, 0x200008)  # same block, still in flight
        assert second.ready >= first.ready

    def test_maf_full_stall(self):
        h = _warm_tlb_hierarchy(maf=MafConfig(entries=1))
        h.load(0.0, 0x300000)
        result = h.load(1.0, 0x310000)
        assert result.maf_stall

    def test_same_set_conflict_flagged(self):
        h = _warm_tlb_hierarchy()
        h.load(0.0, 0x400000)
        conflicting = 0x400000 + 512 * 64  # same L1 set, different block
        result = h.load(1.0, conflicting)
        assert result.same_set_conflict


class TestTlbBehaviour:
    def test_hardware_walk_delays_translation_only(self):
        h = _warm_tlb_hierarchy()
        cold = h.load(0.0, 0x500000)
        assert cold.tlb_miss
        assert cold.tlb_stall_cycles == 0

    def test_pal_walk_reports_stall(self):
        h = _warm_tlb_hierarchy(
            walk=PageWalkModel(stalls_pipeline=True)
        )
        cold = h.load(0.0, 0x500000)
        assert cold.tlb_miss
        assert cold.tlb_stall_cycles == h.config.walk.walk_latency()


class TestIFetch:
    def test_warm_fetch_is_one_cycle(self):
        h = _warm_tlb_hierarchy()
        h.ifetch(0.0, 0x10000)
        result = h.ifetch(100.0, 0x10000)
        assert result.l1_hit
        assert result.ready == 101.0

    def test_prefetch_buffer_catches_sequential_lines(self):
        h = _warm_tlb_hierarchy()
        miss = h.ifetch(0.0, 0x20000)
        assert not miss.l1_hit
        follow = h.ifetch(miss.ready, 0x20000 + 64)
        # Sequential line was prefetched: far cheaper than a full miss.
        assert follow.ready - miss.ready < miss.ready - 0.0

    def test_prefetch_disabled(self):
        h = _warm_tlb_hierarchy(icache_prefetch=False)
        miss = h.ifetch(0.0, 0x20000)
        follow = h.ifetch(miss.ready, 0x20000 + 64)
        assert not follow.l1_hit
        # Full miss path both times.
        assert (follow.ready - miss.ready) > 5

    def test_prefetch_does_not_pollute_icache(self):
        h = _warm_tlb_hierarchy()
        h.ifetch(0.0, 0x20000)
        assert not h.l1i.probe(0x20000 + 64)
        assert h.l1i.block_of(0x20000 + 64) in h._prefetch_buffer


class TestStores:
    def test_store_hit_cheap(self):
        h = _warm_tlb_hierarchy()
        h.load(0.0, 0x1000)
        result = h.store(100.0, 0x1000)
        assert result.l1_hit
        assert result.ready == 101.0

    def test_store_port_contention_mode(self):
        contended = _warm_tlb_hierarchy(store_port_contention=True)
        free = _warm_tlb_hierarchy(store_port_contention=False)
        for h in (contended, free):
            h.load(0.0, 0x1000)
        # Saturate both ports at t=100 with loads, then store.
        for h in (contended, free):
            h.load(100.0, 0x1000)
            h.load(100.0, 0x1008)
        s_contended = contended.store(100.0, 0x1000)
        s_free = free.store(100.0, 0x1000)
        assert s_contended.ready > s_free.ready


class TestSharedMaf:
    def test_shared_maf_is_one_object(self):
        h = _warm_tlb_hierarchy(shared_maf=True)
        assert h.maf_i is h.maf_d is h.maf_l2

    def test_private_mafs_are_distinct(self):
        h = _warm_tlb_hierarchy(shared_maf=False)
        assert h.maf_i is not h.maf_d


class TestL2SetConflictTraps:
    def test_flag_raised_only_when_enabled(self):
        on = _warm_tlb_hierarchy(l2_set_conflict_traps=True)
        off = _warm_tlb_hierarchy(l2_set_conflict_traps=False)
        l2_span = 32768 * 64  # L2 sets * block = 2MB
        for h, expect in ((on, True), (off, False)):
            # Pre-allocate frames sequentially so virtual 2MB aliasing
            # survives translation (the L2 is physically indexed).
            for page in range(l2_span // 8192 + 1):
                h.mapper.translate(0x600000 + page * 8192)
            h.load(0.0, 0x600000)
            result = h.load(1.0, 0x600000 + l2_span)
            assert result.l2_set_conflict == expect
