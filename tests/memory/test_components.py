"""Tests for victim buffer, TLB, paging, and bus components."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.bus import Bus, BusConfig
from repro.memory.paging import PageMapper, PagingConfig
from repro.memory.tlb import PageWalkModel, Tlb, TlbConfig
from repro.memory.victim import VictimBuffer, VictimBufferConfig


class TestVictimBuffer:
    def test_insert_and_extract(self):
        vb = VictimBuffer()
        vb.insert(0x1000, True)
        assert vb.probe_and_extract(0x1000) is True
        assert vb.probe_and_extract(0x1000) is None  # extraction removes

    def test_miss(self):
        vb = VictimBuffer()
        assert vb.probe_and_extract(0x1000) is None
        assert vb.stats.hits == 0

    def test_overflow_displaces_oldest(self):
        vb = VictimBuffer(VictimBufferConfig(entries=2))
        assert vb.insert(0x1000, False) is None
        assert vb.insert(0x2000, True) is None
        displaced = vb.insert(0x3000, False)
        assert displaced == (0x1000, False)
        assert len(vb) == 2

    def test_fifo_order(self):
        vb = VictimBuffer(VictimBufferConfig(entries=8))
        for i in range(8):
            vb.insert(i * 64, False)
        assert vb.probe_and_extract(0) is not None
        assert len(vb) == 7


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb()
        assert not tlb.access(0x10000)
        assert tlb.access(0x10000)
        assert tlb.access(0x10000 + 4096)  # same 8KB page

    def test_capacity_eviction_lru(self):
        tlb = Tlb(TlbConfig(entries=2))
        tlb.access(0 * 8192)
        tlb.access(1 * 8192)
        tlb.access(0 * 8192)        # refresh page 0
        tlb.access(2 * 8192)        # evicts page 1
        assert tlb.access(0 * 8192)
        assert not tlb.access(1 * 8192)

    def test_miss_rate(self):
        tlb = Tlb()
        tlb.access(0)
        tlb.access(0)
        assert tlb.stats.miss_rate == 0.5

    def test_walk_latency_modes(self):
        hardware = PageWalkModel(stalls_pipeline=False)
        pal = PageWalkModel(stalls_pipeline=True)
        assert pal.walk_latency() > hardware.walk_latency()
        assert hardware.walk_latency() == (
            hardware.levels * hardware.level_latency
        )


class TestPaging:
    def test_first_touch_stable(self):
        mapper = PageMapper()
        first = mapper.translate(0x123456)
        assert mapper.translate(0x123456) == first

    def test_offset_preserved(self):
        for policy in ("sequential", "colored", "hashed"):
            mapper = PageMapper(PagingConfig(policy=policy))
            paddr = mapper.translate(0x12345)
            assert paddr & 8191 == 0x12345 & 8191

    def test_sequential_is_a_bump_allocator(self):
        mapper = PageMapper(PagingConfig(policy="sequential"))
        first = mapper.translate(0xAAAA0000) >> 13
        second = mapper.translate(0xBBBB0000) >> 13
        assert second == first + 1

    def test_colored_preserves_color(self):
        config = PagingConfig(policy="colored", colors=256)
        mapper = PageMapper(config)
        for vaddr in (0x0, 0x4000, 0x1230000, 0x7FFF8000):
            page = vaddr >> 13
            frame = mapper.translate(vaddr) >> 13
            assert frame % 256 == page % 256

    def test_hashed_deterministic(self):
        a = PageMapper(PagingConfig(policy="hashed", seed=1))
        b = PageMapper(PagingConfig(policy="hashed", seed=1))
        assert a.translate(0x555000) == b.translate(0x555000)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            PagingConfig(policy="magic")

    @given(st.lists(st.integers(0, 2**40), max_size=100))
    def test_frames_within_physical_memory(self, vaddrs):
        config = PagingConfig(memory_bytes=256 * 1024 * 1024)
        mapper = PageMapper(config)
        for vaddr in vaddrs:
            paddr = mapper.translate(vaddr)
            assert paddr >> 13 < config.memory_bytes // 8192

    @given(st.lists(st.integers(0, 2**30), max_size=100))
    def test_same_page_same_frame(self, vaddrs):
        mapper = PageMapper()
        for vaddr in vaddrs:
            frame_a = mapper.translate(vaddr) >> 13
            frame_b = mapper.translate((vaddr & ~8191) + 11) >> 13
            assert frame_a == frame_b


class TestBus:
    def test_occupancy_rounding(self):
        bus = Bus(BusConfig(width_bytes=16, cpu_cycles_per_bus_cycle=2.0))
        assert bus.occupancy(16) == 2.0
        assert bus.occupancy(17) == 4.0
        assert bus.occupancy(1) == 2.0

    def test_serialised_transfers(self):
        bus = Bus(BusConfig(width_bytes=16, cpu_cycles_per_bus_cycle=2.0))
        first = bus.request(0.0, 16)
        second = bus.request(0.0, 16)
        assert first == 2.0
        assert second == 4.0
        assert bus.stats.contention_cycles == 2.0

    def test_idle_bus_grants_immediately(self):
        bus = Bus()
        done = bus.request(100.0, 16)
        assert done == 100.0 + bus.occupancy(16)

    def test_reset(self):
        bus = Bus()
        bus.request(0.0, 64)
        bus.reset()
        assert bus.request(0.0, 16) == bus.occupancy(16)
