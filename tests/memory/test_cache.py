"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.cache import Cache, CacheConfig


def _small_cache(ways=2, sets=4, block=64):
    return Cache(CacheConfig(sets * ways * block, ways, block, name="t"))


class TestGeometry:
    def test_default_l1_geometry(self):
        config = CacheConfig()
        assert config.sets == 512  # 64KB / (2 ways * 64B)

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            CacheConfig(block_bytes=48)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000)

    def test_block_and_set_math(self):
        cache = _small_cache()
        assert cache.block_of(0x12345) == 0x12345 & ~63
        assert cache.set_of(0) == 0
        assert cache.set_of(64) == 1
        assert cache.set_of(64 * 4) == 0  # wraps at 4 sets


class TestAccessBehaviour:
    def test_cold_miss_then_hit(self):
        cache = _small_cache()
        assert not cache.access(0x1000).hit
        assert cache.access(0x1000).hit
        assert cache.access(0x1008).hit  # same block

    def test_two_way_associativity(self):
        cache = _small_cache(ways=2, sets=1)
        cache.access(0)
        cache.access(64)
        assert cache.access(0).hit
        assert cache.access(64).hit

    def test_lru_eviction(self):
        cache = _small_cache(ways=2, sets=1)
        cache.access(0)
        cache.access(64)
        cache.access(0)            # 64 is now LRU
        result = cache.access(128)  # evicts 64
        assert result.evicted_block == 64
        assert cache.access(0).hit
        assert not cache.access(64).hit

    def test_dirty_eviction_flagged(self):
        cache = _small_cache(ways=1, sets=1)
        cache.access(0, write=True)
        result = cache.access(64)
        assert result.evicted_block == 0
        assert result.evicted_dirty
        assert cache.stats.writebacks == 1

    def test_write_marks_dirty_on_hit(self):
        cache = _small_cache(ways=1, sets=1)
        cache.access(0)
        cache.access(0, write=True)
        result = cache.access(64)
        assert result.evicted_dirty

    def test_probe_does_not_disturb(self):
        cache = _small_cache()
        cache.access(0x1000)
        accesses = cache.stats.accesses
        assert cache.probe(0x1000)
        assert not cache.probe(0x9000)
        assert cache.stats.accesses == accesses

    def test_fill_installs_without_counting(self):
        cache = _small_cache()
        cache.fill(0x2000)
        assert cache.stats.accesses == 0
        assert cache.access(0x2000).hit

    def test_invalidate(self):
        cache = _small_cache()
        cache.access(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.invalidate(0x1000)
        assert not cache.access(0x1000).hit

    def test_miss_rate(self):
        cache = _small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == 0.5

    def test_same_set_conflict_helper(self):
        cache = _small_cache(sets=4)
        assert cache.outstanding_same_set(0, 4 * 64)
        assert not cache.outstanding_same_set(0, 64)
        assert not cache.outstanding_same_set(0, 8)  # same block


class TestProperties:
    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
    def test_repeat_access_always_hits(self, addresses):
        cache = Cache(CacheConfig(4096, 2, 64))
        for address in addresses:
            cache.access(address)
            assert cache.access(address).hit

    @given(st.lists(st.integers(0, 1 << 16), max_size=300))
    def test_occupancy_bounded(self, addresses):
        config = CacheConfig(2048, 2, 64)
        cache = Cache(config)
        for address in addresses:
            cache.access(address)
        total = sum(len(entries) for entries in cache._sets)
        assert total <= config.sets * config.ways

    @given(st.lists(st.integers(0, 1 << 16), max_size=200))
    def test_misses_never_exceed_accesses(self, addresses):
        cache = Cache(CacheConfig(2048, 2, 64))
        for address in addresses:
            cache.access(address)
        assert cache.stats.misses <= cache.stats.accesses

    @given(st.lists(st.integers(0, 2048), max_size=200))
    def test_working_set_within_capacity_converges(self, addresses):
        """Once a small working set is resident, it never misses."""
        cache = Cache(CacheConfig(64 * 1024, 2, 64))
        for address in addresses:
            cache.access(address)
        for address in addresses:
            assert cache.probe(address)
