"""Tests for the EXPERIMENTS.md generator's building blocks."""

from repro.reporting.experiment_report import _md_table


def test_md_table_basic():
    text = _md_table(["a", "b"], [(1, 2.5), ("x", None)])
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert "| 1 | 2.50 |" in lines
    assert "| x | n/a |" in lines


def test_md_table_nan_is_na():
    text = _md_table(["v"], [(float("nan"),)])
    assert "n/a" in text


def test_md_table_handles_many_columns():
    text = _md_table(list("abcdef"), [tuple(range(6))])
    assert text.count("|") > 10
