"""CPI-stack table and stacked-bar rendering."""

import pytest

from repro.reporting import render_cpi_stack_bars, render_cpi_stack_table

STACKS = {
    "C-Ca": {"base": 0.1, "fetch": 0.2, "issue": 0.2, "memory": 0.0,
             "trap": 0.0, "bubble": 0.1},
    "M-L2": {"base": 0.1, "fetch": 0.0, "issue": 0.2, "memory": 3.0,
             "trap": 0.0, "bubble": 0.0},
}


class TestTable:
    def test_rows_and_sum_column(self):
        text = render_cpi_stack_table(STACKS)
        assert "workload" in text and "cpi" in text
        assert "C-Ca" in text and "M-L2" in text
        assert "0.6000" in text   # C-Ca total
        assert "3.3000" in text   # M-L2 total

    def test_component_headers_present(self):
        text = render_cpi_stack_table(STACKS)
        for component in ("base", "fetch", "issue", "memory",
                          "trap", "bubble"):
            assert component in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_cpi_stack_table({})


class TestBars:
    def test_shared_scale_and_legend(self):
        text = render_cpi_stack_bars(STACKS, width=40)
        assert "3.30 CPI" in text          # peak sets the scale
        assert "base" in text and "memory" in text
        assert "C-Ca" in text and "M-L2" in text

    def test_dominant_component_dominates_the_bar(self):
        text = render_cpi_stack_bars(STACKS, width=40)
        m_l2_line = next(
            line for line in text.splitlines() if line.startswith("M-L2")
        )
        # memory is drawn with the fourth fill glyph.
        assert m_l2_line.count("░") > m_l2_line.count("█")

    def test_totals_annotated(self):
        text = render_cpi_stack_bars(STACKS)
        assert "0.600" in text and "3.300" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_cpi_stack_bars({})
