"""Tests for the ASCII bar chart renderer."""

import pytest

from repro.reporting.barchart import render_grouped_bars


def test_basic_rendering():
    text = render_grouped_bars(
        ["go", "swim"],
        {"8-way": [3.0, 4.0], "alpha": [1.0, 1.2]},
        title="demo",
    )
    assert "demo" in text
    assert "go:" in text and "swim:" in text
    assert "4.00" in text


def test_bars_scale_together():
    text = render_grouped_bars(
        ["a"], {"big": [4.0], "small": [1.0]}, width=40
    )
    lines = [line for line in text.splitlines() if "█" in line]
    big = next(line for line in lines if "big" in line)
    small = next(line for line in lines if "small" in line)
    assert big.count("█") == 40
    assert small.count("█") == 10


def test_mismatched_series_rejected():
    with pytest.raises(ValueError, match="values for"):
        render_grouped_bars(["a", "b"], {"s": [1.0]})


def test_empty_groups_rejected():
    with pytest.raises(ValueError):
        render_grouped_bars([], {"s": []})


def test_nonpositive_rejected():
    with pytest.raises(ValueError):
        render_grouped_bars(["a"], {"s": [0.0]})


def test_figure2_result_renders_bars():
    from repro.validation.experiments import Figure2Result

    result = Figure2Result(
        ipcs={
            "8-way": {"go": (3.0, 2.9, 2.2)},
            "sim-alpha": {"go": (1.0, 0.95, 0.9)},
        },
        benchmarks=["go"],
    )
    text = result.render_bars()
    assert "Figure 2" in text
    assert "8-way 1-cycle full bypass" in text
    assert "sim-alpha 2-cycle partial bypass" in text
