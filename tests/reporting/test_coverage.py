"""Tests for the fault × family coverage report."""

from repro.integrity.faultinject import Detection, DetectionMatrix
from repro.reporting.coverage import (
    CoverageCell,
    coverage_cells,
    render_coverage,
)


def _cell(fault, workload, family, *, detected=True, expected=True,
          skipped=""):
    return Detection(
        fault=fault, description=fault, detected=detected,
        channels=["invariant:x"] if detected else [],
        expected_channel=detected and expected,
        workload=workload, family=family, skipped=skipped,
    )


def _sweep(rows):
    return DetectionMatrix(workload="sweep", rows=rows)


class TestAggregation:
    def test_folds_family_members_into_one_cell(self):
        matrix = _sweep([
            _cell("f", "A", "memory"),
            _cell("f", "B", "memory"),
            _cell("f", "C", "dram"),
        ])
        cells = coverage_cells(matrix)
        assert set(cells) == {("f", "memory"), ("f", "dram")}
        assert cells["f", "memory"].total == 2
        assert cells["f", "memory"].detected == 2
        assert cells["f", "memory"].complete

    def test_silent_cell_lists_workload(self):
        matrix = _sweep([
            _cell("f", "A", "memory"),
            _cell("f", "B", "memory", detected=False),
        ])
        cell = coverage_cells(matrix)["f", "memory"]
        assert cell.silent == ["B"]
        assert not cell.complete
        assert cell.label().endswith("!")

    def test_controls_and_skips_excluded(self):
        matrix = _sweep([
            Detection(fault="control", description="", detected=False,
                      workload="A"),
            _cell("f", "", "", skipped="pool faults disabled"),
            _cell("f", "A", "memory"),
        ])
        assert set(coverage_cells(matrix)) == {("f", "memory")}

    def test_off_design_channel_label(self):
        cell = CoverageCell("f", "memory", detected=2, total=2,
                            via_designed=0)
        assert cell.label() == "2/2*"


class TestRender:
    def test_pass_verdict_and_grid(self):
        matrix = _sweep([
            _cell("f1", "A", "memory"),
            _cell("f1", "C", "dram"),
            _cell("f2", "A", "memory"),
        ])
        report = render_coverage(matrix)
        assert "PASS" in report
        assert "f1" in report and "f2" in report
        assert "memory" in report and "dram" in report
        # f2 is not paired with dram: a dot, not a gap.
        f2_line = next(
            line for line in report.splitlines()
            if line.startswith("f2")
        )
        assert "·" in f2_line

    def test_fail_verdict_names_silent_cells(self):
        matrix = _sweep([
            _cell("f1", "A", "memory", detected=False),
        ])
        report = render_coverage(matrix)
        assert "FAIL" in report
        assert "f1@A" in report

    def test_single_workload_matrix_degrades_gracefully(self):
        matrix = DetectionMatrix(workload="M-M", rows=[
            Detection(fault="f", description="", detected=True),
        ])
        assert "no swept cells" in render_coverage(matrix)

    def test_real_sweep_shape(self):
        """End-to-end on a tiny real sweep: one fault, one family."""
        from repro.integrity.faultinject import run_detection_sweep

        sweep = run_detection_sweep(
            faults=["dram_row_overcount"],
            family_members={"dram": ("M-BANK",)},
            include_pool_faults=False,
        )
        report = render_coverage(sweep)
        assert "dram_row_overcount" in report
        assert "1/1✓" in report
        assert "PASS" in report
