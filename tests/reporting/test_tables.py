"""Tests for table rendering and the published-data module."""

import math

import pytest

from repro.reporting import paper_data
from repro.reporting.tables import format_value, render_table


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(3.14159) == "3.14"
        assert format_value(3.14159, precision=3) == "3.142"

    def test_nan_and_none(self):
        assert format_value(float("nan")) == "n/a"
        assert format_value(None) == "n/a"

    def test_strings_and_ints(self):
        assert format_value("abc") == "abc"
        assert format_value(7) == "7"


class TestRenderTable:
    def test_basic_rendering(self):
        text = render_table(
            ["name", "value"],
            [("alpha", 1.0), ("beta", 22.5)],
            title="Demo",
        )
        assert "Demo" in text
        assert "alpha" in text
        assert "22.50" in text
        lines = text.splitlines()
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # consistent column layout

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [(1,)])

    def test_no_title(self):
        text = render_table(["a"], [(1,)])
        assert text.splitlines()[0].strip() == "a"


class TestPaperData:
    def test_table2_complete(self):
        names = set(paper_data.TABLE2_NATIVE_IPC)
        assert len(names) == 21
        assert names == set(paper_data.TABLE2_VALIDATED_ERROR)
        assert names == set(paper_data.TABLE2_INITIAL_ERROR)
        assert names == set(paper_data.TABLE2_OUTORDER_DIFF)

    def test_table3_complete(self):
        assert len(paper_data.TABLE3) == 10
        for values in paper_data.TABLE3.values():
            assert len(values) == 4

    def test_table4_features(self):
        assert set(paper_data.TABLE4) == {
            "ref", "addr", "eret", "luse", "pref", "spec", "stwt",
            "vbuf", "maps", "slot", "trap",
        }

    def test_table5_luse_l1_is_nan(self):
        value = paper_data.TABLE5["l1_latency_3_to_1"]["luse"]
        assert math.isnan(value)

    def test_figure2_benchmarks(self):
        assert len(paper_data.FIGURE2_BENCHMARKS) == 11
        for bench in paper_data.FIGURE2_BENCHMARKS:
            configs = paper_data.FIGURE2_CRUZ_IPC[bench]
            # Partial bypass is the slowest configuration in the study.
            assert configs[2] < configs[0]

    def test_calibration_winner(self):
        winner = paper_data.CALIBRATION_TARGETS["winner"]
        assert winner["page_policy"] == "open"
        assert winner["cas_cycles"] == 4
