"""Behavioural tests for the 21264 pipeline timing engine."""

from dataclasses import replace

import pytest

from repro.core.config import MachineConfig, RegFileConfig
from repro.core.features import FeatureSet
from repro.core.simalpha import SimAlpha
from repro.functional.machine import run_program
from repro.isa.assembler import assemble
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder


def _run(source_or_program, sim=None):
    program = (
        assemble(source_or_program)
        if isinstance(source_or_program, str) else source_or_program
    )
    sim = sim or SimAlpha()
    return sim.run_trace(run_program(program), program.name)


def _dependent_chain(opcode, length, **emit_kwargs):
    b = ProgramBuilder(f"chain-{opcode.mnemonic}")
    b.load_imm("r1", 1)
    for _ in range(length):
        b.emit(opcode, dest="r1", srcs=("r1",), imm=1)
    b.halt()
    return b.build()


class TestDependenceTiming:
    def test_alu_chain_one_per_cycle(self):
        short = _run(_dependent_chain(Opcode.ADDQ, 20))
        long = _run(_dependent_chain(Opcode.ADDQ, 120))
        per_op = (long.cycles - short.cycles) / 100
        assert per_op == pytest.approx(1.0, abs=0.1)

    def test_multiply_chain_seven_per_op(self):
        short = _run(_dependent_chain(Opcode.MULQ, 20))
        long = _run(_dependent_chain(Opcode.MULQ, 120))
        per_op = (long.cycles - short.cycles) / 100
        assert per_op == pytest.approx(7.0, abs=0.1)

    def test_independent_adds_bounded_by_width(self):
        b = ProgramBuilder("wide")
        b.load_imm("r9", 0)
        b.align_octaword()
        b.label("loop")
        for i in range(96):
            reg = f"r{1 + (i % 8)}"
            b.emit(Opcode.ADDQ, dest=reg, srcs=(reg,), imm=1)
        b.emit(Opcode.ADDQ, dest="r9", srcs=("r9",), imm=1)
        b.emit(Opcode.CMPLT, dest="r10", srcs=("r9",), imm=150)
        b.branch(Opcode.BNE, "r10", "loop")
        b.unop(1)
        b.halt()
        result = _run(b.build())
        # Four-wide fetch/issue: at best 4 IPC, and the steady-state
        # loop should come close.
        assert result.ipc <= 4.01
        assert result.ipc > 3.0


class TestFrontEnd:
    def test_trained_loop_branch_costs_nothing(self):
        result = _run("""
            lda r1, #0
        loop:
            addq r1, r1, #1
            cmplt r2, r1, #500
            bne r2, loop
            halt
        """)
        assert result.stats.branch_mispredicts <= 3

    def test_alternating_branch_predicted(self):
        result = _run("""
            lda r1, #0
        loop:
            and r3, r1, #1
            beq r3, skip
            addq r4, r4, #1
        skip:
            addq r1, r1, #1
            cmplt r2, r1, #500
            bne r2, loop
            halt
        """)
        # The local predictor learns the alternation.
        assert result.stats.branch_mispredicts < 30

    def test_mispredict_penalty_visible(self):
        """A data-dependent unpredictable branch costs cycles."""
        predictable = _run("""
            lda r1, #0
        loop:
            addq r4, r4, #1
            addq r1, r1, #1
            cmplt r2, r1, #400
            bne r2, loop
            halt
        """)
        import random as random_module

        b = ProgramBuilder("unpredictable")
        rng = random_module.Random(99)
        values = [rng.getrandbits(1) for _ in range(400)]
        table = b.alloc_words(values)
        b.load_imm("r1", 0)
        b.load_imm("r9", table)
        b.label("loop")
        b.emit(Opcode.SLL, dest="r10", srcs=("r1",), imm=3)
        b.emit(Opcode.ADDQ, dest="r10", srcs=("r10", "r9"))
        b.emit(Opcode.LDQ, dest="r3", base="r10", disp=0)
        b.branch(Opcode.BEQ, "r3", "skip")
        b.emit(Opcode.ADDQ, dest="r4", srcs=("r4",), imm=1)
        b.label("skip")
        b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
        b.emit(Opcode.CMPLT, dest="r2", srcs=("r1",), imm=400)
        b.branch(Opcode.BNE, "r2", "loop")
        b.halt()
        random_result = _run(b.build())
        assert random_result.stats.branch_mispredicts > 100
        assert random_result.cpi > predictable.cpi

    def test_jmp_mispredict_flush(self):
        """An indirect jump alternating targets flushes repeatedly."""
        b = ProgramBuilder("jmp-flip")
        table = b.alloc_words([0, 0])
        b.load_imm("r1", 0)
        b.load_imm("r9", table)
        b.label("loop")
        b.emit(Opcode.AND, dest="r10", srcs=("r1",), imm=1)
        b.emit(Opcode.SLL, dest="r10", srcs=("r10",), imm=3)
        b.emit(Opcode.ADDQ, dest="r10", srcs=("r10", "r9"))
        b.emit(Opcode.LDQ, dest="r11", base="r10", disp=0)
        b.jmp_indirect("r11")
        b.align_octaword()
        b.label("t0")
        b.emit(Opcode.ADDQ, dest="r4", srcs=("r4",), imm=1)
        b.jump("join")
        b.align_octaword()
        b.label("t1")
        b.emit(Opcode.ADDQ, dest="r5", srcs=("r5",), imm=1)
        b.jump("join")
        b.label("join")
        b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
        b.emit(Opcode.CMPLT, dest="r2", srcs=("r1",), imm=300)
        b.branch(Opcode.BNE, "r2", "loop")
        b.halt()
        program = b.build()
        program.data[table] = program.pc_of(program.labels["t0"])
        program.data[table + 8] = program.pc_of(program.labels["t1"])
        result = _run(program)
        assert result.stats.jmp_mispredicts > 250


class TestStoreLoadOrdering:
    def _store_then_load(self, features=None):
        b = ProgramBuilder("stld")
        addr = b.alloc_words([0])
        b.load_imm("r1", 0)
        b.load_imm("r9", addr)
        b.label("loop")
        b.emit(Opcode.ADDQ, dest="r3", srcs=("r3",), imm=1)
        b.emit(Opcode.STQ, srcs=("r3",), base="r9", disp=0)
        b.emit(Opcode.LDQ, dest="r4", base="r9", disp=0)
        b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
        b.emit(Opcode.CMPLT, dest="r2", srcs=("r1",), imm=400)
        b.branch(Opcode.BNE, "r2", "loop")
        b.halt()
        config = MachineConfig(name="t", features=features or FeatureSet())
        return _run(b.build(), SimAlpha(config))

    def test_store_wait_learns(self):
        result = self._store_then_load()
        # The first conflict traps; the wait bit then throttles traps.
        assert result.stats.store_replay_traps >= 1
        assert result.stats.store_wait_holds > 100

    def test_without_stwt_traps_repeat(self):
        with_table = self._store_then_load()
        without = self._store_then_load(FeatureSet().without("stwt"))
        assert without.stats.store_replay_traps > (
            5 * with_table.stats.store_replay_traps
        )
        assert without.cycles > with_table.cycles


class TestRegFileStudy:
    def test_partial_bypass_slows_dependent_code(self):
        program = _dependent_chain(Opcode.ADDQ, 200)
        full = _run(program, SimAlpha(replace(
            MachineConfig(name="full"), regfile=RegFileConfig(2, True)
        )))
        partial = _run(program, SimAlpha(replace(
            MachineConfig(name="partial"), regfile=RegFileConfig(2, False)
        )))
        assert partial.cycles > full.cycles

    def test_access_cycles_deepen_pipeline(self):
        source = """
            lda r1, #0
        loop:
            addq r1, r1, #1
            cmplt r2, r1, #200
            bne r2, loop
            halt
        """
        fast = _run(source, SimAlpha(replace(
            MachineConfig(name="rf1"), regfile=RegFileConfig(1, True)
        )))
        slow = _run(source, SimAlpha(replace(
            MachineConfig(name="rf3"), regfile=RegFileConfig(3, True)
        )))
        assert slow.cycles >= fast.cycles


class TestDeterminism:
    def test_same_trace_same_cycles(self):
        program = assemble("""
            lda r1, #0
        loop:
            addq r1, r1, #1
            cmplt r2, r1, #100
            bne r2, loop
            halt
        """)
        trace = run_program(program)
        a = SimAlpha().run_trace(trace, "d")
        b = SimAlpha().run_trace(trace, "d")
        assert a.cycles == b.cycles

    def test_fresh_pipeline_per_run(self):
        sim = SimAlpha()
        program = assemble("lda r1, #1\nhalt")
        trace = run_program(program)
        first = sim.run_trace(trace, "x")
        second = sim.run_trace(trace, "x")
        assert first.cycles == second.cycles


class TestEret:
    def test_unop_heavy_code_cheaper_with_eret(self):
        b = ProgramBuilder("unops")
        b.load_imm("r1", 0)
        b.label("loop")
        for _ in range(4):
            b.emit(Opcode.ADDQ, dest="r3", srcs=("r3",), imm=1)
            b.unop(3)
        b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
        b.emit(Opcode.CMPLT, dest="r2", srcs=("r1",), imm=300)
        b.branch(Opcode.BNE, "r2", "loop")
        b.halt()
        program = b.build()
        with_eret = _run(program)
        without = _run(program, SimAlpha(MachineConfig(
            name="noeret", features=FeatureSet().without("eret")
        )))
        assert with_eret.cycles <= without.cycles
