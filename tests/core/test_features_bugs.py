"""Tests for the feature set, bug set, and config resolution."""

import pytest

from repro.core.bugs import ALL_BUGS, BugSet
from repro.core.config import MachineConfig, NativeEffects
from repro.core.features import (
    ALL_FEATURES,
    CONSTRAINING_FEATURES,
    OPTIMIZING_FEATURES,
    FeatureSet,
)


class TestFeatureSet:
    def test_ten_features(self):
        assert len(ALL_FEATURES) == 10
        assert len(OPTIMIZING_FEATURES) == 7
        assert len(CONSTRAINING_FEATURES) == 3

    def test_paper_feature_names(self):
        assert set(OPTIMIZING_FEATURES) == {
            "addr", "eret", "luse", "pref", "spec", "stwt", "vbuf"
        }
        assert set(CONSTRAINING_FEATURES) == {"maps", "slot", "trap"}

    def test_default_all_on(self):
        assert FeatureSet().enabled() == ALL_FEATURES

    def test_without(self):
        fs = FeatureSet().without("luse")
        assert not fs.luse
        assert fs.addr

    def test_without_unknown(self):
        with pytest.raises(ValueError, match="unknown feature"):
            FeatureSet().without("turbo")

    def test_stripped(self):
        assert FeatureSet.stripped().enabled() == ()

    def test_with_only(self):
        fs = FeatureSet().with_only("addr", "luse")
        assert fs.enabled() == ("addr", "luse")

    def test_describe(self):
        assert FeatureSet().describe() == "all features"
        assert FeatureSet.stripped().describe() == "stripped"
        assert "luse" in FeatureSet().without("luse").describe()


class TestBugSet:
    def test_validated_has_no_bugs(self):
        assert BugSet().present() == ()

    def test_sim_initial_has_all(self):
        assert set(BugSet.sim_initial().present()) == set(ALL_BUGS)

    def test_eleven_documented_bugs(self):
        assert len(ALL_BUGS) == 11

    def test_with_only(self):
        bugs = BugSet().with_only("jmp_undercharge")
        assert bugs.present() == ("jmp_undercharge",)

    def test_without(self):
        bugs = BugSet.sim_initial().without("wrong_fu_mix")
        assert "wrong_fu_mix" not in bugs.present()
        assert len(bugs.present()) == len(ALL_BUGS) - 1

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError):
            BugSet().with_only("heisenbug")


class TestConfigResolution:
    def test_spec_feature_propagates(self):
        config = MachineConfig(features=FeatureSet().without("spec"))
        resolved = config.resolved()
        assert not resolved.tournament.speculative_update
        assert not resolved.line_predictor.speculative_update
        assert not resolved.ras.speculative_update

    def test_bug_overrides_spec(self):
        config = MachineConfig(bugs=BugSet().with_only(
            "no_speculative_update"
        ))
        assert not config.resolved().tournament.speculative_update

    def test_vbuf_and_pref_propagate(self):
        config = MachineConfig(
            features=FeatureSet().without("vbuf").without("pref")
        )
        resolved = config.resolved()
        assert not resolved.memory.victim_buffer_enabled
        assert not resolved.memory.icache_prefetch

    def test_native_effects_propagate(self):
        config = MachineConfig(native=NativeEffects.ds10l())
        resolved = config.resolved()
        memory = resolved.memory
        assert memory.shared_maf
        assert memory.store_port_contention
        assert memory.controller_row_cache > 0
        assert memory.writeback_traffic
        assert memory.l2_set_conflict_traps
        assert memory.walk.stalls_pipeline
        assert memory.paging.policy == "colored"
        assert memory.mem_bus.name == "mem_bus_split"

    def test_l2_bug_propagates(self):
        config = MachineConfig(bugs=BugSet().with_only("l2_extra_cycle"))
        assert config.resolved().memory.l2_extra_cycles == 1

    def test_validated_defaults_clean(self):
        resolved = MachineConfig().resolved()
        assert resolved.memory.paging.policy == "sequential"
        assert not resolved.memory.shared_maf
        assert resolved.memory.l2_extra_cycles == 0


class TestDescribe:
    def test_validated_describe(self):
        text = MachineConfig().describe()
        assert "all features" in text
        assert "ROB 80" in text

    def test_buggy_describe(self):
        config = MachineConfig(
            name="sim-initial", bugs=BugSet.sim_initial()
        )
        assert "bugs:" in config.describe()

    def test_native_describe(self):
        config = MachineConfig(native=NativeEffects.ds10l())
        text = config.describe()
        assert "native effects:" in text
        assert "page_coloring" in text

    def test_regfile_describe(self):
        from dataclasses import replace

        from repro.core.config import RegFileConfig

        config = replace(MachineConfig(), regfile=RegFileConfig(2, False))
        assert "partial bypass" in config.describe()
