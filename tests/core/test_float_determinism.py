"""Float-exactness audit of the timing hot loop.

Event times are floats, but every increment the engine ever applies is
a dyadic rational with denominator dividing 4 (integer latencies, the
aggressive scheduler's 0.25-cycle bias, the 2.5/4.0 bus-cycle ratios).
Sums and maxima of multiples of 1/4 stay multiples of 1/4, and doubles
hold ``k/4`` exactly below ``2**51`` cycles — so there is no
accumulation drift and repeated runs are bit-identical.  See the
float-exactness note in :mod:`repro.core.pipeline`'s docstring.

These tests pin both halves of that argument: every observed event
time is a multiple of 1/4, and long runs are deterministic to the
byte.  The long-run test replays ~1M instructions by default and ~10M
under ``REPRO_FULL=1``, through a virtual repeating trace so memory
stays bounded.
"""

import os

import pytest

from repro.core.simalpha import SimAlpha
from repro.core.siminitial import make_sim_initial
from repro.functional.trace import DynInstr
from repro.validation.harness import ResultGrid
from repro.workloads.micro import memory_independent
from repro.workloads.suite import WorkloadSet

FULL = bool(os.environ.get("REPRO_FULL"))
#: Instruction floor for the long determinism run.
LONG_RUN_INSTRUCTIONS = 10_000_000 if FULL else 1_000_000


class TimeCollector:
    """Observer that records every committed event time."""

    # The pipeline reads these straight off whatever observer it was
    # handed.
    metrics = None
    sanitizer = None

    def __init__(self):
        self.times = []

    def begin(self, stats) -> None:
        pass

    def commit(self, dyn, fetch, map_time, issue, complete, retire,
               stats) -> None:
        self.times.extend((fetch, map_time, issue, complete, retire))

    def commit_short(self, dyn, fetch, retire, stats) -> None:
        self.times.extend((fetch, retire))

    def finalize(self, result) -> None:
        pass


class RepeatingTrace:
    """A base trace tiled ``repeats`` times with fresh ``seq``/``index``.

    Synthesises records on access, so a 10M-instruction replay costs
    one loop body of real storage.  Supports exactly the access
    pattern the timing engine and the blockcache use: ``len``,
    sequential iteration, and random indexing.
    """

    def __init__(self, base, repeats: int):
        self._base = list(base)
        self._repeats = repeats

    def __len__(self) -> int:
        return len(self._base) * self._repeats

    def _clone(self, position: int) -> DynInstr:
        dyn = self._base[position % len(self._base)]
        return DynInstr(
            seq=position, index=position, pc=dyn.pc, opcode=dyn.opcode,
            dest=dyn.dest, srcs=dyn.srcs, taken=dyn.taken,
            next_pc=dyn.next_pc, eaddr=dyn.eaddr, size=dyn.size,
            slot=dyn.slot,
        )

    def __getitem__(self, position: int) -> DynInstr:
        if position < 0 or position >= len(self):
            raise IndexError(position)
        return self._clone(position)

    def __iter__(self):
        for position in range(len(self)):
            yield self._clone(position)


@pytest.fixture(scope="module")
def workloads():
    return WorkloadSet()


def canonical(result) -> str:
    grid = ResultGrid()
    grid.add(result)
    return grid.to_json(canonical=True)


class TestQuarterCycleExactness:
    """Every event time the engine emits is an exact multiple of 1/4."""

    @pytest.mark.parametrize("factory", [SimAlpha, make_sim_initial],
                             ids=["sim-alpha", "sim-initial"])
    @pytest.mark.parametrize("kernel", ["E-I", "M-D"])
    def test_all_event_times_are_dyadic(self, workloads, factory, kernel):
        # sim-initial exercises the 0.25-cycle aggressive-scheduler
        # bias; M-D drags in the fractional bus-cycle ratios.
        collector = TimeCollector()
        trace = workloads.trace(kernel)
        result = factory().run_trace(trace, kernel, observer=collector)
        assert collector.times, "observer saw no commits"
        inexact = [t for t in collector.times if not (t * 4).is_integer()]
        assert not inexact, (
            f"{len(inexact)} event times are not multiples of 1/4; "
            f"first: {inexact[0]!r}"
        )
        assert (result.cycles * 4).is_integer()

    def test_times_are_far_below_the_exactness_ceiling(self, workloads):
        trace = workloads.trace("M-D")
        result = SimAlpha().run_trace(trace, "M-D")
        # The argument holds while times stay below 2**51; a real run
        # is about ten orders of magnitude under it.
        assert result.cycles < 2 ** 51


class TestDeterminism:
    def test_two_runs_are_byte_identical(self, workloads):
        trace = workloads.trace("M-I")
        first = SimAlpha().run_trace(trace, "M-I")
        second = SimAlpha().run_trace(trace, "M-I")
        assert canonical(first) == canonical(second)
        assert first.cycles == second.cycles

    def test_long_run_is_byte_identical(self):
        from repro.functional import run_program

        base = run_program(memory_independent())
        repeats = -(-LONG_RUN_INSTRUCTIONS // len(base))  # ceil
        trace = RepeatingTrace(base, repeats)
        assert len(trace) >= LONG_RUN_INSTRUCTIONS
        runs = [
            SimAlpha().run_trace(trace, "M-I-LONG") for _ in range(2)
        ]
        assert runs[0].cycles == runs[1].cycles
        assert canonical(runs[0]) == canonical(runs[1])
        # And the stats dictionaries agree field for field.
        assert runs[0].stats.to_dict() == runs[1].stats.to_dict()
