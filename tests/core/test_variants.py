"""Cross-simulator shape tests: the paper's headline relationships.

These test the *relative* behaviour of the simulator family, which is
the point of the paper: sim-initial is badly wrong on the front-end
microbenchmarks, sim-stripped under-estimates, sim-outorder
over-estimates, and the validated sim-alpha tracks the reference.
"""

import pytest

from repro.core import (
    SimAlpha,
    make_sim_initial,
    make_sim_stripped,
    make_sim_with_bugs,
)
from repro.simulators.refmachine import make_native_machine
from repro.simulators.simoutorder import SimOutOrder
from repro.validation.harness import Harness


@pytest.fixture(scope="module")
def harness():
    return Harness()


def _cpi(factory, harness, workload):
    return harness.run_one(factory, workload).cpi


class TestSimInitial:
    def test_much_slower_on_conditional_control(self, harness):
        """C-Ca: paper error -498% — the late-branch-recovery bug."""
        native = _cpi(make_native_machine, harness, "C-Ca")
        initial = _cpi(make_sim_initial, harness, "C-Ca")
        alpha = _cpi(SimAlpha, harness, "C-Ca")
        assert initial > 1.5 * native
        assert abs(alpha - native) / native < 0.1

    def test_overestimates_dependent_multiply(self, harness):
        """E-DM1: paper error +85.7% — the generic-FU latency trap."""
        native = _cpi(make_native_machine, harness, "E-DM1")
        initial = _cpi(make_sim_initial, harness, "E-DM1")
        assert initial < 0.5 * native

    def test_single_bug_injection_is_isolated(self, harness):
        """Injecting only the jmp bug perturbs C-S1 but not E-D1."""
        buggy = make_sim_with_bugs("jmp_undercharge")
        alpha_cs1 = _cpi(SimAlpha, harness, "C-S1")
        buggy_cs1 = _cpi(lambda: buggy, harness, "C-S1")
        assert buggy_cs1 < alpha_cs1  # undercharging -> faster
        alpha_ed1 = _cpi(SimAlpha, harness, "E-D1")
        buggy_ed1 = _cpi(lambda: buggy, harness, "E-D1")
        assert buggy_ed1 == pytest.approx(alpha_ed1, rel=0.01)


class TestSimStripped:
    def test_underestimates_native_on_macro(self, harness):
        """Paper: stripped is slower than the DS-10L on nearly all."""
        slower = 0
        for workload in ("gzip", "gcc", "eon", "mesa"):
            native = _cpi(make_native_machine, harness, workload)
            stripped = _cpi(make_sim_stripped, harness, workload)
            if stripped > native:
                slower += 1
        assert slower >= 3

    def test_slower_than_validated_alpha(self, harness):
        for workload in ("gzip", "eon"):
            alpha = _cpi(SimAlpha, harness, workload)
            stripped = _cpi(make_sim_stripped, harness, workload)
            assert stripped > alpha


class TestSimOutorder:
    def test_overestimates_native_on_macro(self, harness):
        """Paper: sim-outorder beats the DS-10L on every benchmark but
        lucas, by ~37% on average."""
        faster = 0
        for workload in ("gzip", "gcc", "twolf", "art"):
            native = _cpi(make_native_machine, harness, workload)
            outorder = _cpi(SimOutOrder, harness, workload)
            if outorder < native:
                faster += 1
        assert faster >= 3

    def test_front_end_optimism_on_control_micro(self, harness):
        """C-Ca: the shallow pipe + BTB beat the real front end."""
        native = _cpi(make_native_machine, harness, "C-Ca")
        outorder = _cpi(SimOutOrder, harness, "C-Ca")
        assert outorder < native


class TestValidatedAlpha:
    @pytest.mark.parametrize("workload", ["C-R", "E-I", "E-D3", "M-D"])
    def test_tracks_native_within_ten_percent(self, harness, workload):
        native = _cpi(make_native_machine, harness, workload)
        alpha = _cpi(SimAlpha, harness, workload)
        assert abs(alpha - native) / native < 0.10

    def test_art_is_the_positive_outlier(self, harness):
        """Paper: sim-alpha overestimates only on art (+43%)."""
        native = _cpi(make_native_machine, harness, "art")
        alpha = _cpi(SimAlpha, harness, "art")
        assert alpha < native  # simulator faster -> positive error

    def test_mesa_is_strongly_underestimated(self, harness):
        native = _cpi(make_native_machine, harness, "mesa")
        alpha = _cpi(SimAlpha, harness, "mesa")
        assert alpha > 1.08 * native
