"""Detailed pipeline-mechanism tests: retire bursts, alignment,
queue pressure, cluster effects."""

from dataclasses import replace

import pytest

from repro.core.config import MachineConfig
from repro.core.simalpha import SimAlpha
from repro.functional.machine import run_program
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder


def _run(program, sim=None):
    sim = sim or SimAlpha()
    return sim.run_trace(run_program(program), program.name)


class TestRetirement:
    def test_bursty_retire_bounded_at_eleven(self):
        """Paper: 'support exists in the reorder buffer for bursty
        retires, up to eleven per cycle'.  A long-latency op stalls
        retirement; the backlog then drains at <= 11/cycle."""
        b = ProgramBuilder("burst")
        b.load_imm("r1", 1)
        b.emit(Opcode.MULQ, dest="r2", srcs=("r1",), imm=3)  # 7 cycles
        for i in range(40):
            reg = f"r{3 + (i % 6)}"
            b.emit(Opcode.ADDQ, dest=reg, srcs=(reg,), imm=1)
        b.halt()
        result = _run(b.build())
        assert result.ipc <= 11.0

    def test_narrow_retire_limits_ipc(self):
        b = ProgramBuilder("wide")
        b.load_imm("r9", 0)
        b.align_octaword()
        b.label("loop")
        for i in range(96):
            reg = f"r{1 + (i % 8)}"
            b.emit(Opcode.ADDQ, dest=reg, srcs=(reg,), imm=1)
        b.emit(Opcode.ADDQ, dest="r9", srcs=("r9",), imm=1)
        b.emit(Opcode.CMPLT, dest="r10", srcs=("r9",), imm=100)
        b.branch(Opcode.BNE, "r10", "loop")
        b.halt()
        program = b.build()
        normal = _run(program)
        narrow = _run(program, SimAlpha(replace(
            MachineConfig(name="narrow"), retire_width=2
        )))
        assert narrow.cycles > normal.cycles
        assert narrow.ipc <= 2.01


class TestFetchAlignment:
    def _loop(self, pad):
        b = ProgramBuilder(f"align{pad}")
        b.load_imm("r9", 0)
        b.align_octaword()
        b.unop(pad)
        b.label("loop")
        for i in range(7):
            reg = f"r{1 + i}"
            b.emit(Opcode.ADDQ, dest=reg, srcs=(reg,), imm=1)
        b.emit(Opcode.ADDQ, dest="r9", srcs=("r9",), imm=1)
        b.emit(Opcode.CMPLT, dest="r10", srcs=("r9",), imm=300)
        b.branch(Opcode.BNE, "r10", "loop")
        b.halt()
        return b.build()

    def test_misaligned_loop_fetches_more_octawords(self):
        """The 21264's octaword-aligned fetch makes loop alignment
        matter — unlike sim-outorder (see test_abstract_sims)."""
        aligned = _run(self._loop(0))
        misaligned = _run(self._loop(2))
        assert misaligned.cycles > aligned.cycles


class TestQueuePressure:
    def test_tiny_issue_queue_hurts_latency_tolerance(self):
        """Independent L2-resident loads need issue-queue room to
        overlap; a 3-entry queue serialises them."""
        b = ProgramBuilder("mlp")
        arrays = b.alloc(1 << 18, align=64)
        b.load_imm("r9", arrays)
        b.load_imm("r1", 0)
        b.label("loop")
        for i in range(4):
            b.emit(Opcode.SLL, dest="r13", srcs=("r1",), imm=6)
            # Spread across distinct L1 sets (avoid same-set traps).
            b.emit(Opcode.LDA, dest="r13", srcs=("r13",), imm=i * 65600)
            b.emit(Opcode.ADDQ, dest="r13", srcs=("r13", "r9"))
            b.emit(Opcode.LDQ, dest=f"r{3 + i}", base="r13", disp=0)
            b.emit(Opcode.ADDQ, dest="r15", srcs=("r15", f"r{3 + i}"))
        b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
        b.emit(Opcode.CMPLT, dest="r2", srcs=("r1",), imm=200)
        b.branch(Opcode.BNE, "r2", "loop")
        b.halt()
        program = b.build()
        roomy = _run(program)
        cramped = _run(program, SimAlpha(replace(
            MachineConfig(name="cramped"), int_queue_size=3
        )))
        assert cramped.cycles > 1.3 * roomy.cycles

    def test_store_queue_backpressure(self):
        b = ProgramBuilder("stores")
        buffer_base = b.alloc(1 << 21, align=64)
        b.load_imm("r9", buffer_base)
        b.load_imm("r1", 0)
        b.label("loop")
        for i in range(4):
            b.emit(Opcode.STQ, srcs=("r1",), base="r9", disp=i * 64)
        b.emit(Opcode.LDA, dest="r9", srcs=("r9",), imm=256)
        b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
        b.emit(Opcode.CMPLT, dest="r2", srcs=("r1",), imm=200)
        b.branch(Opcode.BNE, "r2", "loop")
        b.halt()
        program = b.build()
        roomy = _run(program)
        cramped = _run(program, SimAlpha(replace(
            MachineConfig(name="cramped-sq"), store_queue_size=2
        )))
        assert cramped.cycles >= roomy.cycles


class TestClusters:
    def test_cross_cluster_penalty_configurable(self):
        b = ProgramBuilder("chain")
        b.load_imm("r1", 1)
        for _ in range(300):
            b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
        b.halt()
        program = b.build()
        unpenalised = _run(program, SimAlpha(replace(
            MachineConfig(name="free"), cross_cluster_bypass=0
        )))
        heavy = _run(program, SimAlpha(replace(
            MachineConfig(name="heavy"), cross_cluster_bypass=3
        )))
        assert heavy.cycles >= unpenalised.cycles


class TestMapsStall:
    def test_fires_once_per_episode(self):
        """A persistently full window pays the 3-cycle stall on entry,
        not per instruction."""
        b = ProgramBuilder("full-window")
        head = b.alloc_words([0])
        b.poke(head, head)
        b.load_imm("r9", head)
        b.label("loop")
        b.emit(Opcode.LDQ, dest="r9", base="r9", disp=0)  # 3-cycle chain
        for i in range(6):
            reg = f"r{1 + i}"
            b.emit(Opcode.ADDQ, dest=reg, srcs=(reg,), imm=1)
        b.emit(Opcode.ADDQ, dest="r10", srcs=("r10",), imm=1)
        b.emit(Opcode.CMPLT, dest="r11", srcs=("r10",), imm=400)
        b.branch(Opcode.BNE, "r11", "loop")
        b.halt()
        result = _run(b.build())
        assert result.stats.maps_stalls < 400  # far fewer than loads
