"""The reproduction's central claim, tested directly: the error
structure emerges from the NativeMachine construction.

Microbenchmarks are cache/TLB resident, so the native-only effects
barely move them; memory-bound macrobenchmarks feel them strongly.
That differential IS the paper's Table 2 vs Table 3 contrast.
"""

import pytest

from repro.core.simalpha import SimAlpha
from repro.simulators.refmachine import make_native_machine
from repro.validation.harness import Harness
from repro.validation.metrics import mean_absolute_error, percent_error_cpi


@pytest.fixture(scope="module")
def errors():
    harness = Harness()
    native = make_native_machine()
    alpha = SimAlpha()
    out = {}
    for name in ("C-Ca", "E-I", "E-D3", "M-D",          # resident micro
                 "mesa", "lucas", "equake"):            # memory macro
        trace = harness.workloads.trace(name)
        reference = native.run_trace(trace, name)
        simulated = alpha.run_trace(trace, name)
        out[name] = percent_error_cpi(simulated.cpi, reference.cpi)
    return out


def test_micro_errors_are_small(errors):
    micro = [errors[n] for n in ("C-Ca", "E-I", "E-D3", "M-D")]
    assert mean_absolute_error(micro) < 3.0


def test_macro_errors_are_larger(errors):
    macro = [errors[n] for n in ("mesa", "lucas", "equake")]
    assert mean_absolute_error(macro) > 4.0


def test_macro_errors_are_negative(errors):
    """The paper's headline: non-validated real-target simulators
    under-estimate actual performance."""
    for name in ("mesa", "lucas", "equake"):
        assert errors[name] < 0, name


def test_differential_is_the_point(errors):
    micro = mean_absolute_error(
        errors[n] for n in ("C-Ca", "E-I", "E-D3", "M-D")
    )
    macro = mean_absolute_error(
        errors[n] for n in ("mesa", "lucas", "equake")
    )
    assert macro > 3 * micro
