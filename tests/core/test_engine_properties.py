"""Property-based tests of the pipeline engine on random programs.

A hypothesis strategy generates small random (but always terminating)
programs; the engine must satisfy structural invariants on every one:
retire-bandwidth bounds, determinism, monotonicity of constraint
tightening, and agreement of the instruction count with the functional
trace.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.core.config import MachineConfig
from repro.core.features import FeatureSet
from repro.core.simalpha import SimAlpha
from repro.functional.machine import run_program
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder

_SCRATCH = ["r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8"]
_OPS = [Opcode.ADDQ, Opcode.SUBQ, Opcode.XOR, Opcode.AND,
        Opcode.SLL, Opcode.MULQ]


@st.composite
def small_programs(draw):
    """A random terminating program: a loop over random segments."""
    rng_ops = draw(st.lists(
        st.tuples(
            st.sampled_from(_OPS),
            st.integers(0, len(_SCRATCH) - 1),
            st.integers(0, len(_SCRATCH) - 1),
            st.integers(0, 255),
        ),
        min_size=3, max_size=30,
    ))
    iterations = draw(st.integers(2, 30))
    use_memory = draw(st.booleans())
    use_branch = draw(st.booleans())

    b = ProgramBuilder("random")
    data = b.alloc_words(list(range(16)))
    b.load_imm("r9", data)
    b.load_imm("r10", 0)
    b.label("loop")
    for op, dest_index, src_index, imm in rng_ops:
        b.emit(op, dest=_SCRATCH[dest_index],
               srcs=(_SCRATCH[src_index],), imm=imm or 1)
    if use_memory:
        b.emit(Opcode.LDQ, dest="r11", base="r9", disp=8)
        b.emit(Opcode.STQ, srcs=("r11",), base="r9", disp=16)
    if use_branch:
        skip = b.fresh_label()
        b.emit(Opcode.AND, dest="r12", srcs=("r10",), imm=1)
        b.branch(Opcode.BEQ, "r12", skip)
        b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
        b.label(skip)
    b.emit(Opcode.ADDQ, dest="r10", srcs=("r10",), imm=1)
    b.emit(Opcode.CMPLT, dest="r13", srcs=("r10",), imm=iterations)
    b.branch(Opcode.BNE, "r13", "loop")
    b.halt()
    return b.build()


@settings(max_examples=25, deadline=None)
@given(small_programs())
def test_instruction_count_matches_trace(program):
    trace = run_program(program)
    result = SimAlpha().run_trace(trace, "random")
    assert result.instructions == len(trace)


@settings(max_examples=25, deadline=None)
@given(small_programs())
def test_retire_bandwidth_bound(program):
    """IPC can never exceed the 11-wide retire (nor 4-wide fetch in
    steady state plus slack; the hard bound is retirement)."""
    trace = run_program(program)
    result = SimAlpha().run_trace(trace, "random")
    assert result.ipc <= 11.0
    assert result.cycles >= 1.0


@settings(max_examples=15, deadline=None)
@given(small_programs())
def test_determinism(program):
    trace = run_program(program)
    first = SimAlpha().run_trace(trace, "random")
    second = SimAlpha().run_trace(trace, "random")
    assert first.cycles == second.cycles
    assert first.stats.branch_mispredicts == second.stats.branch_mispredicts


@settings(max_examples=15, deadline=None)
@given(small_programs())
def test_stripped_never_beats_all_features_by_much(program):
    """Removing the seven optimizing features (keeping constraints)
    must not speed the machine up beyond arbitration noise."""
    trace = run_program(program)
    full = SimAlpha().run_trace(trace, "random")
    no_opts = FeatureSet().with_only("maps", "slot", "trap")
    gutted = SimAlpha(
        MachineConfig(name="gutted", features=no_opts)
    ).run_trace(trace, "random")
    # On tiny programs a handful of cycles of predictor-arbitration
    # noise can exceed any purely relative bound, so allow an absolute
    # floor alongside the 2% tolerance.
    noise = max(0.02 * full.cycles, 8.0)
    assert gutted.cycles >= full.cycles - noise


@settings(max_examples=15, deadline=None)
@given(small_programs(), st.integers(2, 4))
def test_deeper_regfile_never_faster(program, access_cycles):
    from repro.core.config import RegFileConfig

    trace = run_program(program)
    shallow = SimAlpha().run_trace(trace, "random")
    deep = SimAlpha(replace(
        MachineConfig(name="deep"),
        regfile=RegFileConfig(access_cycles, True),
    )).run_trace(trace, "random")
    assert deep.cycles >= shallow.cycles * 0.999


@settings(max_examples=15, deadline=None)
@given(small_programs())
def test_smaller_queues_never_faster(program):
    trace = run_program(program)
    normal = SimAlpha().run_trace(trace, "random")
    tiny = SimAlpha(replace(
        MachineConfig(name="tiny"), int_queue_size=4, rob_size=16,
    )).run_trace(trace, "random")
    assert tiny.cycles >= normal.cycles * 0.999
