"""Each sim-initial bug, verified against its Section 3.4 description.

Every flag in :class:`repro.core.bugs.BugSet` encodes one documented
error; these tests pin the *direction* each bug moves timing on a
workload crafted to expose it.
"""

import pytest

from repro.core.simalpha import SimAlpha
from repro.core.siminitial import make_sim_with_bugs
from repro.functional.machine import run_program
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder
from repro.validation.harness import Harness
from repro.workloads.micro import (
    control_conditional,
    control_switch,
    execute_dependent_multiply,
    memory_instruction_prefetch,
)


@pytest.fixture(scope="module")
def harness():
    return Harness()


def _cycles(sim, program_or_trace, name="t"):
    if not isinstance(program_or_trace, list):
        trace = run_program(program_or_trace)
    else:
        trace = program_or_trace
    return sim.run_trace(trace, name).cycles


def test_late_branch_recovery_slows_cc(harness):
    """'sim-initial waited until after the execute stage to discover a
    line misprediction' — C-C collapses without the slot adder."""
    trace = harness.workloads.trace("C-Ca")
    clean = _cycles(SimAlpha(), trace)
    buggy = _cycles(make_sim_with_bugs("late_branch_recovery"), trace)
    assert buggy > 1.5 * clean


def test_no_speculative_update_slows_alternation(harness):
    """Stale predictor histories break closely-spaced correlation."""
    trace = harness.workloads.trace("C-O")
    clean = _cycles(SimAlpha(), trace)
    buggy = _cycles(make_sim_with_bugs("no_speculative_update"), trace)
    assert buggy > clean


def test_extra_way_predictor_cycle_uniformly_slows():
    """'charging an extra cycle to access the way predictor' adds a
    cycle to every fetch group."""
    program = control_conditional(iterations=500)
    clean = _cycles(SimAlpha(), program)
    buggy = _cycles(make_sim_with_bugs("extra_way_predictor_cycle"),
                    program)
    assert buggy > clean * 1.05


def test_octaword_squash_penalty_charges_taken_branches():
    program = control_conditional(iterations=500)
    clean = _cycles(SimAlpha(), program)
    buggy = _cycles(make_sim_with_bugs("octaword_squash_penalty"), program)
    assert buggy >= clean


def test_jmp_undercharge_speeds_switches():
    """'undercharging for indirect jumps' made C-S too fast."""
    program = control_switch(1, iterations=500)
    clean = _cycles(SimAlpha(), program)
    buggy = _cycles(make_sim_with_bugs("jmp_undercharge"), program)
    assert buggy < clean


def test_wrong_fu_mix_makes_multiplies_generic():
    """E-DM1: the dependent multiply chain runs at ALU speed under the
    generic-resource bug (paper: +85.7% error)."""
    program = execute_dependent_multiply(iterations=40)
    clean = _cycles(SimAlpha(), program)
    buggy = _cycles(make_sim_with_bugs("wrong_fu_mix"), program)
    assert buggy < clean / 3


def test_no_unop_removal_costs_issue_slots():
    b = ProgramBuilder("unoppy")
    b.load_imm("r1", 0)
    b.label("loop")
    for _ in range(4):
        b.emit(Opcode.ADDQ, dest="r3", srcs=("r3",), imm=1)
        b.unop(3)
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r2", srcs=("r1",), imm=400)
    b.branch(Opcode.BNE, "r2", "loop")
    b.halt()
    program = b.build()
    clean = _cycles(SimAlpha(), program)
    buggy = _cycles(make_sim_with_bugs("no_unop_removal"), program)
    assert buggy >= clean


def test_masked_load_trap_addresses_alias_neighbours():
    """'masked out the lower three bits ... in the load-trap
    identification logic': loads to adjacent words alias and trap."""
    b = ProgramBuilder("alias")
    slot_a = b.alloc_words([0])   # two quadwords, 16 bytes apart
    slot_b = b.alloc_words([0])
    b.load_imm("r9", slot_a)
    b.load_imm("r10", slot_b)
    b.load_imm("r1", 0)
    b.label("loop")
    # A slow-to-issue older load (address depends on a multiply) and a
    # quick younger load to a *different* word that aliases under the
    # masked comparison.
    b.emit(Opcode.MULQ, dest="r11", srcs=("r31",), imm=0)
    b.emit(Opcode.ADDQ, dest="r11", srcs=("r11", "r9"))
    b.emit(Opcode.LDQ, dest="r4", base="r11", disp=0)
    b.emit(Opcode.LDQ, dest="r5", base="r10", disp=0)
    b.emit(Opcode.ADDQ, dest="r1", srcs=("r1",), imm=1)
    b.emit(Opcode.CMPLT, dest="r2", srcs=("r1",), imm=400)
    b.branch(Opcode.BNE, "r2", "loop")
    b.halt()
    program = b.build()
    trace = run_program(program)
    clean = SimAlpha().run_trace(trace, "alias")
    buggy = make_sim_with_bugs("masked_load_trap_addresses").run_trace(
        trace, "alias"
    )
    assert buggy.stats.load_order_traps > clean.stats.load_order_traps
    assert buggy.cycles > clean.cycles


def test_l2_extra_cycle_slows_l2_hits(harness):
    trace = harness.workloads.trace("M-L2")
    clean = _cycles(SimAlpha(), trace)
    buggy = _cycles(make_sim_with_bugs("l2_extra_cycle"), trace)
    assert buggy > clean


def test_short_luse_recovery_undercharges(harness):
    """'charging one cycle too few for recovery upon load-use
    mis-speculation' makes miss-heavy code slightly fast."""
    trace = harness.workloads.trace("M-L2")
    clean = _cycles(SimAlpha(), trace)
    buggy = _cycles(make_sim_with_bugs("short_luse_recovery"), trace)
    assert buggy <= clean


def test_aggressive_cluster_scheduler_speeds_dependent_chains(harness):
    """The too-smart scheduler 'increased E-Dn performance beyond that
    of the 21264'."""
    trace = harness.workloads.trace("E-D4")
    clean = _cycles(SimAlpha(), trace)
    buggy = _cycles(make_sim_with_bugs("aggressive_cluster_scheduler"),
                    trace)
    assert buggy <= clean


def test_prefetch_bug_free_instruction_stream(harness):
    """Control: injecting memory-side bugs leaves pure-ALU code alone."""
    trace = harness.workloads.trace("E-D1")
    clean = _cycles(SimAlpha(), trace)
    for bug in ("l2_extra_cycle", "masked_load_trap_addresses",
                "short_luse_recovery"):
        buggy = _cycles(make_sim_with_bugs(bug), trace)
        assert buggy == pytest.approx(clean, rel=0.01), bug
