"""Trace-compiled fast path (the blockcache): equivalence and safety.

The contract under test is absolute: with the blockcache on, every
simulator must produce **byte-identical** canonical output to the pure
detailed timing loop, on every kernel — kernels the cache compiles
(steady all-hit loops) and kernels it must decline (miss-dominated or
misprediction-noisy bodies) alike.  On top of equivalence, the verify
sampler must actually sample (and quarantine on divergence), and the
``blockcache=False`` escape hatch must keep the layer fully out of the
run.

The default matrix keeps tier-1 cheap; ``REPRO_FULL=1`` widens it to
the full kernel set including the M-LOOP bench kernel.
"""

import os

import pytest

from repro.core.blockcache import (
    BLOCKCACHE_VERSION,
    BlockCacheConfig,
    resolve_blockcache,
)
from repro.core.simalpha import SimAlpha
from repro.core.siminitial import make_sim_initial
from repro.core.simstripped import make_sim_stripped
from repro.integrity.sanitizers import IntegrityError
from repro.obs.observer import Instrumentation
from repro.validation.harness import ResultGrid
from repro.workloads.micro import (
    BENCH_KERNELS,
    MICROBENCHMARKS,
    build_microbenchmark,
    memory_loop,
)
from repro.workloads.suite import WorkloadSet

FULL = bool(os.environ.get("REPRO_FULL"))

#: The default matrix pairs one kernel the blockcache compiles to a
#: steady replay (M-I), one per fallback class — replay-unsafe misses
#: (M-D) and per-iteration mispredictions (C-Ca) — plus a second
#: steady-family kernel (E-I).
KERNELS = ["M-I", "E-I", "C-Ca", "M-D"]
if FULL:
    KERNELS += ["E-D3", "C-S1", "M-L2", "M-ROW", "M-LOOP"]

SIMULATORS = {
    "sim-alpha": SimAlpha,
    "sim-initial": make_sim_initial,
    "sim-stripped": make_sim_stripped,
}


@pytest.fixture(scope="module")
def workloads():
    ws = WorkloadSet()
    ws.register(memory_loop())
    return ws


def canonical(result) -> str:
    grid = ResultGrid()
    grid.add(result)
    return grid.to_json(canonical=True)


class TestEquivalence:
    """simulator x kernel x {fast, detailed}: byte-identical output."""

    @pytest.mark.parametrize("sim_name", sorted(SIMULATORS))
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_fast_path_byte_identical(self, workloads, sim_name, kernel):
        trace = workloads.trace(kernel)
        factory = SIMULATORS[sim_name]
        detailed = factory().run_trace(trace, kernel, blockcache=False)
        fast = factory().run_trace(trace, kernel)
        assert canonical(fast) == canonical(detailed), (
            f"{sim_name} on {kernel}: blockcache output diverged from "
            f"the detailed loop"
        )

    def test_fast_path_identical_under_instrumentation(self, workloads):
        # Replay commits flow through the observer: the CPI stack and
        # metrics path must see the same stream as the detailed loop.
        kernel = "M-I"
        trace = workloads.trace(kernel)
        runs = {}
        for label, blockcache in (("detailed", False), ("fast", None)):
            inst = Instrumentation()
            obs = inst.observer(simulator="sim-alpha", workload=kernel)
            runs[label] = canonical(SimAlpha().run_trace(
                trace, kernel, observer=obs, blockcache=blockcache
            ))
        assert runs["fast"] == runs["detailed"]


class TestVerifySampling:
    def test_sampler_probes_and_matches_on_clean_run(self, workloads):
        trace = workloads.trace("M-I")
        inst = Instrumentation()
        obs = inst.observer(simulator="sim-alpha", workload="M-I")
        SimAlpha().run_trace(
            trace, "M-I", observer=obs,
            blockcache=BlockCacheConfig(verify_interval=2, max_batch=8),
        )
        reg = inst.registry

        def count(name):
            return reg.counter(f"blockcache.{name}").value

        assert count("steady_blocks") >= 1
        assert count("replayed_instructions") > 0
        assert count("verify_probes") > 0
        assert count("verify_matches") == count("verify_probes")

    def test_corrupted_memo_is_caught_and_raises(self, workloads):
        # The faultinject matrix proves quarantine through the full
        # production cell path; this is the direct unit-level check
        # that a corrupted memoized record trips the strict probe.
        def corrupt(memo):
            cmps = list(memo.cmps)
            record = list(cmps[0])
            for i in range(len(record) - 1, -1, -1):
                if isinstance(record[i], float):
                    record[i] += 1.0
                    break
            cmps[0] = tuple(record)
            memo.cmps = tuple(cmps)

        trace = workloads.trace("E-I")
        with pytest.raises(IntegrityError) as excinfo:
            SimAlpha().run_trace(
                trace, "E-I",
                blockcache=BlockCacheConfig(
                    verify_interval=2, debug_corrupt=corrupt
                ),
            )
        assert excinfo.value.violation.invariant == "blockcache_divergence"

    def test_disabled_blockcache_never_engages(self, workloads):
        trace = workloads.trace("M-I")
        inst = Instrumentation()
        obs = inst.observer(simulator="sim-alpha", workload="M-I")
        SimAlpha().run_trace(trace, "M-I", observer=obs, blockcache=False)
        assert inst.registry.counter("blockcache.batches").value == 0
        assert inst.registry.counter("blockcache.captures").value == 0

    def test_short_traces_never_engage(self, workloads):
        trace = workloads.trace("M-I")[:48]  # below min_trace_len
        inst = Instrumentation()
        obs = inst.observer(simulator="sim-alpha", workload="M-I")
        SimAlpha().run_trace(trace, "M-I", observer=obs)
        assert inst.registry.counter("blockcache.captures").value == 0


class TestConfigResolution:
    def test_none_and_true_select_defaults(self):
        assert resolve_blockcache(None) == BlockCacheConfig()
        assert resolve_blockcache(True) == BlockCacheConfig()

    def test_false_disables(self):
        assert resolve_blockcache(False) is None

    def test_config_passthrough_respects_enabled(self):
        config = BlockCacheConfig(verify_interval=4)
        assert resolve_blockcache(config) is config
        assert resolve_blockcache(
            BlockCacheConfig(enabled=False)
        ) is None

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            resolve_blockcache("on")


class TestCacheKeyVersioning:
    """Result-cache entries must be bound to the blockcache version."""

    def _key(self, blockcache):
        from repro.exec.engine import ExperimentEngine

        from repro.exec.spec import RunOptions

        engine = ExperimentEngine(
            WorkloadSet(), RunOptions(jobs=1, blockcache=blockcache)
        )
        return engine._cell_key("sim-alpha", "cfg", "M-I", "fp")

    def test_default_key_carries_blockcache_version(self):
        assert f"+bc{BLOCKCACHE_VERSION}" in self._key(
            None
        ).package_version

    def test_disabled_key_is_unversioned(self):
        assert "+bc" not in self._key(False).package_version

    def test_keys_differ_so_stale_entries_cannot_be_served(self):
        assert self._key(None) != self._key(False)


class TestBenchKernelRegistry:
    """M-LOOP is bench-only: buildable by name, out of the grids."""

    def test_mloop_not_in_experiment_registry(self):
        assert "M-LOOP" not in MICROBENCHMARKS
        assert "M-LOOP" in BENCH_KERNELS

    def test_mloop_buildable_by_name(self):
        program = build_microbenchmark("M-LOOP")
        assert program.name == "M-LOOP"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            build_microbenchmark("M-NOPE")
