"""Property-based semantics tests: each integer operate instruction
against a Python oracle over random 64-bit operands."""

from hypothesis import given, settings, strategies as st

from repro.functional.machine import FunctionalMachine
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder

_MASK = (1 << 64) - 1


def _signed(value):
    value &= _MASK
    return value - (1 << 64) if value >> 63 else value


_ORACLES = {
    Opcode.ADDQ: lambda a, b: (a + b) & _MASK,
    Opcode.SUBQ: lambda a, b: (a - b) & _MASK,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: (a << (b & 63)) & _MASK,
    Opcode.SRL: lambda a, b: (a & _MASK) >> (b & 63),
    Opcode.CMPEQ: lambda a, b: int(a == b),
    Opcode.CMPLT: lambda a, b: int(_signed(a) < _signed(b)),
    Opcode.CMPLE: lambda a, b: int(_signed(a) <= _signed(b)),
    Opcode.MULQ: lambda a, b: (a * b) & _MASK,
}

uint64 = st.integers(min_value=0, max_value=_MASK)


def _execute(opcode, a, b):
    builder = ProgramBuilder("sem")
    builder.load_imm("r1", a)
    builder.load_imm("r2", b)
    builder.emit(opcode, dest="r3", srcs=("r1", "r2"))
    builder.halt()
    machine = FunctionalMachine(builder.build())
    machine.run()
    return machine.state.read_int("r3")


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(sorted(_ORACLES, key=lambda op: op.mnemonic)),
       uint64, uint64)
def test_operate_semantics_match_oracle(opcode, a, b):
    assert _execute(opcode, a, b) == _ORACLES[opcode](a, b)


@settings(max_examples=30, deadline=None)
@given(uint64, uint64)
def test_cmov_semantics(a, b):
    builder = ProgramBuilder("cmov")
    builder.load_imm("r1", a)      # condition
    builder.load_imm("r2", b)      # candidate value
    builder.load_imm("r3", 12345)  # old dest
    builder.emit(Opcode.CMOVEQ, dest="r3", srcs=("r1", "r2"))
    builder.emit(Opcode.CMOVNE, dest="r4", srcs=("r1", "r2"))
    builder.halt()
    machine = FunctionalMachine(builder.build())
    machine.run()
    assert machine.state.read_int("r3") == (b if a == 0 else 12345)
    assert machine.state.read_int("r4") == (0 if a == 0 else b)


@settings(max_examples=30, deadline=None)
@given(uint64)
def test_branch_direction_matches_sign(value):
    builder = ProgramBuilder("br")
    builder.load_imm("r1", value)
    builder.branch(Opcode.BLT, "r1", "neg")
    builder.load_imm("r9", 1)   # non-negative path
    builder.jump("end")
    builder.label("neg")
    builder.load_imm("r9", 2)
    builder.label("end")
    builder.halt()
    machine = FunctionalMachine(builder.build())
    machine.run()
    expected = 2 if _signed(value) < 0 else 1
    assert machine.state.read_int("r9") == expected
