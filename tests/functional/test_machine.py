"""Tests for the functional (architectural) machine."""

import pytest

from repro.functional.machine import (
    ExecutionLimitExceeded,
    FunctionalMachine,
    run_program,
)
from repro.isa.assembler import assemble
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder, STACK_BASE


def _run(source: str):
    machine = FunctionalMachine(assemble(source))
    trace = machine.run()
    return machine, trace


class TestIntegerOps:
    def test_arithmetic(self):
        machine, _ = _run("""
            lda r1, #10
            lda r2, #3
            addq r3, r1, r2
            subq r4, r1, r2
            mulq r5, r1, r2
            halt
        """)
        state = machine.state
        assert state.read_int("r3") == 13
        assert state.read_int("r4") == 7
        assert state.read_int("r5") == 30

    def test_logic_and_shifts(self):
        machine, _ = _run("""
            lda r1, #0b1100
            lda r2, #0b1010
            and r3, r1, r2
            bis r4, r1, r2
            xor r5, r1, r2
            sll r6, r1, #2
            srl r7, r1, #2
            halt
        """)
        state = machine.state
        assert state.read_int("r3") == 0b1000
        assert state.read_int("r4") == 0b1110
        assert state.read_int("r5") == 0b0110
        assert state.read_int("r6") == 0b110000
        assert state.read_int("r7") == 0b11

    def test_comparisons_signed(self):
        machine, _ = _run("""
            lda r1, #-5
            lda r2, #3
            cmplt r3, r1, r2
            cmple r4, r2, r2
            cmpeq r5, r1, r2
            halt
        """)
        state = machine.state
        assert state.read_int("r3") == 1
        assert state.read_int("r4") == 1
        assert state.read_int("r5") == 0

    def test_wraparound_64bit(self):
        machine, _ = _run("""
            lda r1, #-1
            addq r2, r1, #2
            halt
        """)
        assert machine.state.read_int("r2") == 1

    def test_zero_register_ignores_writes(self):
        machine, _ = _run("""
            lda r31, #42
            addq r1, r31, #1
            halt
        """)
        assert machine.state.read_int("r31") == 0
        assert machine.state.read_int("r1") == 1

    def test_cmov(self):
        b = ProgramBuilder("cmov")
        b.load_imm("r1", 0)
        b.load_imm("r2", 7)
        b.load_imm("r3", 100)
        b.emit(Opcode.CMOVEQ, dest="r3", srcs=("r1", "r2"))  # r1==0: moves
        b.emit(Opcode.CMOVNE, dest="r4", srcs=("r1", "r2"))  # r1==0: keeps
        b.halt()
        machine = FunctionalMachine(b.build())
        machine.run()
        assert machine.state.read_int("r3") == 7
        assert machine.state.read_int("r4") == 0


class TestControlFlow:
    def test_loop_counts(self):
        machine, trace = _run("""
            lda r1, #0
        loop:
            addq r1, r1, #1
            cmplt r2, r1, #5
            bne r2, loop
            halt
        """)
        assert machine.state.read_int("r1") == 5
        branches = [d for d in trace if d.is_control]
        assert sum(d.taken for d in branches) == 4

    def test_call_and_return(self):
        machine, trace = _run("""
            bsr fn
            halt
        fn:
            lda r7, #99
            ret
        """)
        assert machine.state.read_int("r7") == 99
        # RA held the return address during execution.
        rets = [d for d in trace if d.opcode is Opcode.RET]
        assert len(rets) == 1
        assert rets[0].next_pc == trace[0].pc + 4

    def test_indirect_jump(self):
        b = ProgramBuilder("jmp")
        table = b.alloc_words([0])
        b.load_imm("r1", table)
        b.emit(Opcode.LDQ, dest="r2", base="r1", disp=0)
        b.jmp_indirect("r2")
        b.halt()  # skipped
        b.label("target")
        b.load_imm("r9", 123)
        b.halt()
        program = b.build()
        program.data[table] = program.pc_of(program.labels["target"])
        machine = FunctionalMachine(program)
        machine.run()
        assert machine.state.read_int("r9") == 123

    def test_branch_conditions(self):
        machine, _ = _run("""
            lda r1, #-1
            lda r9, #0
            bge r1, skip1
            addq r9, r9, #1
        skip1:
            blt r1, skip2
            addq r9, r9, #16
        skip2:
            halt
        """)
        # bge not taken (adds 1), blt taken (skips 16).
        assert machine.state.read_int("r9") == 1

    def test_execution_limit(self):
        program = assemble("""
        forever:
            br forever
        """)
        with pytest.raises(ExecutionLimitExceeded, match="infinite loop"):
            FunctionalMachine(program, limit=100).run()


class TestMemory:
    def test_load_store_roundtrip(self):
        b = ProgramBuilder("mem")
        addr = b.alloc_words([0])
        b.load_imm("r1", addr)
        b.load_imm("r2", 0xDEAD)
        b.emit(Opcode.STQ, srcs=("r2",), base="r1", disp=0)
        b.emit(Opcode.LDQ, dest="r3", base="r1", disp=0)
        b.halt()
        machine = FunctionalMachine(b.build())
        machine.run()
        assert machine.state.read_int("r3") == 0xDEAD

    def test_byte_ops(self):
        b = ProgramBuilder("bytes")
        addr = b.alloc_words([0])
        b.load_imm("r1", addr)
        b.load_imm("r2", 0xAB)
        b.emit(Opcode.STB, srcs=("r2",), base="r1", disp=3)
        b.emit(Opcode.LDBU, dest="r3", base="r1", disp=3)
        b.emit(Opcode.LDQ, dest="r4", base="r1", disp=0)
        b.halt()
        machine = FunctionalMachine(b.build())
        machine.run()
        assert machine.state.read_int("r3") == 0xAB
        assert machine.state.read_int("r4") == 0xAB << 24

    def test_fp_memory_roundtrip(self):
        b = ProgramBuilder("fpmem")
        addr = b.alloc_words([0])
        b.load_imm("r1", addr)
        b.emit(Opcode.ADDT, dest="f1", srcs=("f31", "f31"))
        b.emit(Opcode.STT, srcs=("f1",), base="r1", disp=0)
        b.emit(Opcode.LDT, dest="f2", base="r1", disp=0)
        b.halt()
        machine = FunctionalMachine(b.build())
        machine.run()
        assert machine.state.read_fp("f2") == 0.0

    def test_sp_initialised(self):
        machine, _ = _run("halt")
        assert machine.state.read_int("r30") == STACK_BASE


class TestTraceRecords:
    def test_memory_base_is_a_timing_source(self):
        """Address registers appear in trace srcs (dependence!)."""
        _, trace = _run("""
            lda r1, #4096
            ldq r2, 0(r1)
            halt
        """)
        load = trace[1]
        assert "r1" in load.srcs
        assert load.eaddr == 4096

    def test_sequence_numbers(self):
        _, trace = _run("lda r1, #1\nlda r2, #2\nhalt")
        assert [d.seq for d in trace] == [0, 1, 2]

    def test_taken_branch_next_pc(self):
        _, trace = _run("""
            br over
            lda r1, #1
        over:
            halt
        """)
        assert trace[0].taken
        assert trace[0].next_pc == trace[1].pc
        assert trace[1].opcode is Opcode.HALT

    def test_run_program_helper(self):
        trace = run_program(assemble("halt"))
        assert len(trace) == 1
