"""Tests (including property-based) for the sparse memory image."""

from hypothesis import given, strategies as st

from repro.functional.memory_image import SparseMemory

addresses = st.integers(min_value=0, max_value=2**48)
words = st.integers(min_value=0, max_value=2**64 - 1)
bytes_ = st.integers(min_value=0, max_value=255)


def test_unwritten_reads_zero():
    memory = SparseMemory()
    assert memory.load_word(0x1234) == 0
    assert memory.load_byte(0x1234) == 0


def test_word_roundtrip():
    memory = SparseMemory()
    memory.store_word(64, 0xDEADBEEF)
    assert memory.load_word(64) == 0xDEADBEEF


def test_unaligned_word_access_uses_containing_word():
    memory = SparseMemory()
    memory.store_word(64, 0x1111)
    assert memory.load_word(67) == 0x1111


def test_initial_image():
    memory = SparseMemory({8: 42, 16: 43})
    assert memory.load_word(8) == 42
    assert memory.load_word(16) == 43
    assert len(memory) == 2


def test_byte_within_word():
    memory = SparseMemory()
    memory.store_word(0, 0x0807060504030201)
    assert memory.load_byte(0) == 0x01
    assert memory.load_byte(7) == 0x08


def test_store_byte_preserves_others():
    memory = SparseMemory()
    memory.store_word(0, 0xFFFFFFFFFFFFFFFF)
    memory.store_byte(3, 0)
    assert memory.load_byte(3) == 0
    assert memory.load_byte(2) == 0xFF
    assert memory.load_byte(4) == 0xFF


@given(addresses, words)
def test_word_roundtrip_property(address, value):
    memory = SparseMemory()
    memory.store_word(address, value)
    assert memory.load_word(address) == value


@given(addresses, bytes_)
def test_byte_roundtrip_property(address, value):
    memory = SparseMemory()
    memory.store_byte(address, value)
    assert memory.load_byte(address) == value


@given(addresses, words, bytes_)
def test_byte_store_only_touches_one_byte(address, word, byte):
    memory = SparseMemory()
    memory.store_word(address, word)
    offset = address & 7
    memory.store_byte(address, byte)
    base = address & ~7
    for i in range(8):
        expected = byte if i == offset else (word >> (8 * i)) & 0xFF
        assert memory.load_byte(base + i) == expected


@given(st.lists(st.tuples(addresses, words), max_size=30))
def test_last_write_wins(writes):
    memory = SparseMemory()
    expected = {}
    for address, value in writes:
        memory.store_word(address, value)
        expected[address & ~7] = value
    for base, value in expected.items():
        assert memory.load_word(base) == value
