"""Tests for the calibration kernels and the workload registry."""

import pytest

from repro.functional.machine import run_program
from repro.isa.instructions import InstrClass
from repro.workloads.calibration import (
    STREAM_KERNELS,
    calibration_suite,
    lmbench_latency,
    stream_kernel,
    stream_suite,
)
from repro.workloads.suite import (
    WorkloadSet,
    micro_names,
    spec2000_names,
    spec95_names,
)


class TestStream:
    @pytest.mark.parametrize("kernel", STREAM_KERNELS)
    def test_kernels_build_and_run(self, kernel):
        program = stream_kernel(kernel, elements=512, passes=1)
        trace = run_program(program)
        loads = sum(d.is_load for d in trace)
        stores = sum(d.is_store for d in trace)
        assert loads >= 512
        assert stores >= 512

    def test_add_kernel_has_two_loads_per_store(self):
        trace = run_program(stream_kernel("add", elements=256, passes=1))
        loads = sum(d.is_load for d in trace)
        stores = sum(d.is_store for d in trace)
        assert loads == 2 * stores

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            stream_kernel("memset")

    def test_suite_builds_all_four(self):
        programs = stream_suite(elements=128, passes=1)
        assert [p.name for p in programs] == [
            f"stream-{k}" for k in STREAM_KERNELS
        ]

    def test_offsets_wrap(self):
        trace = run_program(stream_kernel("copy", elements=64, passes=3))
        loads = [d.eaddr for d in trace if d.is_load]
        assert len(set(loads)) == 64  # three passes revisit 64 slots


class TestLmbench:
    @pytest.mark.parametrize("level", ["l1", "l2", "memory"])
    def test_levels_build(self, level):
        program = lmbench_latency(level=level, traversals=1)
        trace = run_program(program)
        assert any(d.is_load for d in trace)

    def test_unknown_level(self):
        with pytest.raises(ValueError):
            lmbench_latency(level="l5")

    def test_footprints_ordered(self):
        def footprint(level):
            program = lmbench_latency(level=level, traversals=1)
            addresses = list(program.data)
            return max(addresses) - min(addresses)

        assert footprint("l1") < footprint("l2") < footprint("memory")


class TestWorkloadSet:
    def test_names_cover_all_suites(self):
        ws = WorkloadSet()
        names = ws.names()
        for name in micro_names() + spec2000_names() + spec95_names():
            assert name in names

    def test_trace_cached(self):
        ws = WorkloadSet()
        first = ws.trace("E-D1")
        second = ws.trace("E-D1")
        assert first is second

    def test_program_cached(self):
        ws = WorkloadSet()
        assert ws.program("C-S1") is ws.program("C-S1")

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            WorkloadSet().program("quake3")

    def test_register_calibration(self):
        ws = WorkloadSet()
        names = ws.register_calibration()
        assert "stream-copy" in names
        assert "lmbench-memory" in names
        assert "M-M" in names
        ws.trace("stream-copy")

    def test_register_custom_program(self):
        from repro.isa.assembler import assemble

        ws = WorkloadSet()
        program = assemble("halt")
        program.name = "custom"
        ws.register(program)
        assert len(ws.trace("custom")) == 1

    def test_traces_helper(self):
        ws = WorkloadSet()
        pairs = ws.traces(["E-D1", "E-D2"])
        assert [name for name, _ in pairs] == ["E-D1", "E-D2"]


def test_calibration_suite_contents():
    programs = calibration_suite()
    assert set(programs) == {
        "M-M", "stream-copy", "stream-scale", "stream-add", "stream-triad",
        "lmbench-l1", "lmbench-l2", "lmbench-memory",
    }
