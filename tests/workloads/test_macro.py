"""Tests for the synthetic macrobenchmark generator."""

import pytest

from repro.functional.machine import run_program
from repro.isa.instructions import InstrClass
from repro.workloads.macro import (
    SPEC2000_PROFILES,
    SPEC95_PROFILES,
    WorkloadProfile,
    build_macro,
    build_spec2000,
    build_spec95,
)

_TABLE3_ORDER = [
    "gzip", "vpr", "gcc", "parser", "eon", "twolf",
    "mesa", "art", "equake", "lucas",
]


def test_spec2000_suite_matches_table3():
    assert list(SPEC2000_PROFILES) == _TABLE3_ORDER


def test_spec95_suite_has_eleven():
    assert len(SPEC95_PROFILES) == 11


def test_unknown_names():
    with pytest.raises(KeyError):
        build_spec2000("doom")
    with pytest.raises(KeyError):
        build_spec95("doom")


@pytest.mark.parametrize("name", _TABLE3_ORDER)
def test_every_proxy_builds_and_runs(name):
    trace = run_program(build_spec2000(name))
    assert 10_000 < len(trace) < 200_000


def test_generation_is_deterministic():
    a = build_spec2000("gzip")
    b = build_spec2000("gzip")
    assert [str(i) for i in a.instructions] == [str(i) for i in b.instructions]
    trace_a = run_program(a)
    trace_b = run_program(b)
    assert len(trace_a) == len(trace_b)
    assert all(
        x.pc == y.pc and x.taken == y.taken
        for x, y in zip(trace_a[:5000], trace_b[:5000])
    )


def test_seed_changes_program():
    base = SPEC2000_PROFILES["gzip"]
    from dataclasses import replace

    other = replace(base, seed=base.seed + 1)
    a = build_macro(base)
    b = build_macro(other)
    assert [str(i) for i in a.instructions] != [str(i) for i in b.instructions]


class TestProfileKnobs:
    def _mix(self, profile):
        trace = run_program(build_macro(profile))
        total = len(trace)
        return {
            "loads": sum(d.is_load for d in trace) / total,
            "stores": sum(d.is_store for d in trace) / total,
            "fp": sum(d.is_fp for d in trace) / total,
            "control": sum(d.is_control for d in trace) / total,
            "nops": sum(d.is_nop for d in trace) / total,
        }

    def test_fp_ratio_controls_fp_mix(self):
        int_profile = WorkloadProfile(name="t-int", fp_ratio=0.0,
                                      iterations=30)
        fp_profile = WorkloadProfile(name="t-fp", fp_ratio=0.7,
                                     iterations=30)
        assert self._mix(fp_profile)["fp"] > self._mix(int_profile)["fp"] + 0.1

    def test_loads_knob(self):
        light = WorkloadProfile(name="t-l", loads_per_segment=0.3,
                                iterations=30)
        heavy = WorkloadProfile(name="t-h", loads_per_segment=2.5,
                                iterations=30)
        assert self._mix(heavy)["loads"] > self._mix(light)["loads"]

    def test_unop_knob(self):
        none = WorkloadProfile(name="t-n", unop_frac=0.0, iterations=30)
        many = WorkloadProfile(name="t-m", unop_frac=1.0, iterations=30)
        # Only the one-off alignment padding before the loop for `none`.
        assert self._mix(none)["nops"] < 0.001
        assert self._mix(many)["nops"] > 0.02

    def test_calls_emitted(self):
        profile = WorkloadProfile(name="t-c", call_frac=1.0, functions=3,
                                  iterations=30)
        trace = run_program(build_macro(profile))
        calls = sum(d.klass is InstrClass.CALL for d in trace)
        rets = sum(d.klass is InstrClass.RETURN for d in trace)
        assert calls == rets > 0

    def test_icache_thrash_spreads_code(self):
        compact = build_macro(WorkloadProfile(
            name="t-k", call_frac=0.5, functions=3, iterations=5
        ))
        thrashed = build_macro(WorkloadProfile(
            name="t-t", call_frac=0.5, functions=3, icache_thrash=True,
            iterations=5
        ))
        assert len(thrashed.instructions) > len(compact.instructions) + 8000

    def test_streams_emitted(self):
        profile = WorkloadProfile(name="t-s", streams=2, stream_frac=1.0,
                                  loads_per_segment=1.0, iterations=30)
        trace = run_program(build_macro(profile))
        loads = [d for d in trace if d.is_load]
        assert loads
        # Stream addresses are sequential per stream.
        stream_loads = [d.eaddr for d in loads]
        assert len(set(stream_loads)) > len(stream_loads) // 4

    def test_conflict_knob_produces_store_load_pairs(self):
        profile = WorkloadProfile(
            name="t-x", conflict_frac=1.0, stores_per_segment=1.0,
            iterations=30,
        )
        trace = run_program(build_macro(profile))
        pairs = 0
        for i, d in enumerate(trace[:-1]):
            if d.is_store and trace[i + 1].is_load:
                if trace[i + 1].eaddr == d.eaddr:
                    pairs += 1
        assert pairs > 50
