"""Tests for the DRAM-layer kernels (M-ROW, M-BANK) and the
workload-family registry the detection sweep is built on."""

import pytest

from repro.core.config import MachineConfig
from repro.core.pipeline import AlphaPipeline
from repro.functional.machine import run_program
from repro.workloads.micro import MICROBENCHMARKS
from repro.workloads.micro.dram import dram_bank_thrash, dram_row_stream
from repro.workloads.suite import (
    WORKLOAD_FAMILIES,
    WorkloadSet,
    family_workloads,
)


def _dram_stats(name, program):
    """Run ``program`` through sim-alpha and return its DRAM stats."""
    trace = run_program(program)
    pipeline = AlphaPipeline(MachineConfig(name="dram-micros-test"))
    pipeline.run_trace(trace, name)
    return pipeline.hierarchy.dram.stats


class TestRowStream:
    def test_every_load_is_a_fresh_block(self):
        trace = run_program(dram_row_stream(blocks=256, unroll=8))
        loads = [d for d in trace if d.is_load]
        assert len(loads) == 256
        blocks = [d.eaddr // 64 for d in loads]
        assert len(set(blocks)) == 256
        # Sequential: the whole point of the row-locality extreme.
        assert blocks == sorted(blocks)

    def test_row_hit_rate_is_extreme(self):
        stats = _dram_stats("M-ROW", dram_row_stream(blocks=2048, unroll=8))
        # 64 blocks per 4KB row: at most one miss per row plus cold
        # i-stream traffic, so the hit rate lands well above 90%.
        assert stats.accesses >= 2048
        assert stats.row_hit_rate > 0.9

    def test_rejects_ragged_unroll(self):
        with pytest.raises(ValueError, match="multiple of unroll"):
            dram_row_stream(blocks=100, unroll=8)


class TestBankThrash:
    def test_thrash_phase_strides_alternate_pages(self):
        trace = run_program(dram_bank_thrash(pages=32, unroll=2))
        loads = [d for d in trace if d.is_load]
        # Phase 1: one load per page; phase 2: one per alternate page.
        assert len(loads) == 32 + 16
        thrash = loads[32:]
        addresses = [d.eaddr for d in thrash]
        assert all(a % 8192 == 4096 for a in addresses)
        assert all(b - a == 16384 for a, b in zip(addresses, addresses[1:]))

    def test_row_misses_and_bank_conflicts_dominate(self):
        stats = _dram_stats("M-BANK", dram_bank_thrash(pages=384, unroll=2))
        # Every data access opens a fresh row; overlapping independent
        # loads pile onto the same bank.
        assert stats.row_hit_rate < 0.1
        assert stats.bank_conflicts > stats.accesses // 4

    def test_rejects_odd_pages(self):
        with pytest.raises(ValueError, match="must be even"):
            dram_bank_thrash(pages=33)


class TestFamilies:
    def test_every_member_is_a_registered_workload(self):
        known = set(MICROBENCHMARKS)
        for family, members in WORKLOAD_FAMILIES.items():
            assert members, family
            missing = [m for m in members if m not in known]
            assert not missing, f"{family}: {missing}"

    def test_families_cover_paper_taxonomy(self):
        assert set(WORKLOAD_FAMILIES) == {
            "control", "execute", "memory", "dram",
        }

    def test_family_workloads_dedups_in_family_order(self):
        names = family_workloads(["memory", "dram"])
        assert names == ["M-D", "M-L2", "M-M", "M-ROW", "M-BANK"]

    def test_family_workloads_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown workload family"):
            family_workloads(["cache"])

    def test_workload_set_builds_family_members(self):
        ws = WorkloadSet()
        for name in family_workloads(WORKLOAD_FAMILIES):
            assert ws.program(name).name == name
