"""The SPEC95 proxies (Figure 2's workloads) run on every machine."""

import pytest

from repro.core.simalpha import SimAlpha
from repro.functional.machine import run_program
from repro.simulators.eightway import EightWaySim
from repro.workloads.macro import SPEC95_PROFILES, build_spec95

_FIGURE2_ORDER = [
    "go", "compress", "gcc95", "ijpeg", "perl",
    "swim", "mgrid", "applu", "turb3d", "fpppp", "wave5",
]


def test_figure2_order():
    assert list(SPEC95_PROFILES) == _FIGURE2_ORDER


@pytest.mark.parametrize("name", _FIGURE2_ORDER)
def test_proxy_builds_and_times(name):
    trace = run_program(build_spec95(name))
    assert len(trace) > 10_000
    result = SimAlpha().run_trace(trace, name)
    assert 0.1 < result.ipc < 4.5


def test_fp_proxies_are_fp_heavy():
    int_trace = run_program(build_spec95("go"))
    fp_trace = run_program(build_spec95("swim"))
    int_fp = sum(d.is_fp for d in int_trace) / len(int_trace)
    fp_fp = sum(d.is_fp for d in fp_trace) / len(fp_trace)
    assert int_fp == 0.0
    assert fp_fp > 0.05


def test_eightway_beats_simalpha_on_spec95():
    """The Figure 2 premise: the idealized machine's IPCs tower."""
    wins = 0
    for name in ("go", "swim", "fpppp"):
        trace = run_program(build_spec95(name))
        alpha = SimAlpha().run_trace(trace, name)
        eight = EightWaySim().run_trace(trace, name)
        if eight.ipc > 1.5 * alpha.ipc:
            wins += 1
    assert wins >= 2
