"""Tests for the microbenchmark suite (Table 2 + DRAM kernels)."""

import pytest

from repro.functional.machine import run_program
from repro.isa.instructions import InstrClass, Opcode
from repro.workloads.micro import (
    MICROBENCHMARKS,
    build_microbenchmark,
    control_conditional,
    control_switch,
    execute_dependent,
    memory_memory,
    microbenchmark_suite,
)

_TABLE2_ORDER = [
    "C-Ca", "C-Cb", "C-R", "C-S1", "C-S2", "C-S3", "C-O",
    "E-I", "E-F", "E-D1", "E-D2", "E-D3", "E-D4", "E-D5", "E-D6",
    "E-DM1", "M-I", "M-D", "M-L2", "M-M", "M-IP",
]

#: The reproduction's own DRAM-layer kernels, after the Table 2 set.
_EXTRA = ["M-ROW", "M-BANK"]


def test_suite_is_table2_order_plus_dram_kernels():
    assert list(MICROBENCHMARKS) == _TABLE2_ORDER + _EXTRA


def test_build_by_name():
    program = build_microbenchmark("C-R")
    assert program.name == "C-R"


def test_unknown_name():
    with pytest.raises(KeyError, match="unknown microbenchmark"):
        build_microbenchmark("C-X")


@pytest.mark.parametrize("name", _TABLE2_ORDER + _EXTRA)
def test_every_benchmark_builds_and_runs(name):
    program = build_microbenchmark(name)
    trace = run_program(program)
    assert len(trace) > 1000
    assert trace[-1].opcode is Opcode.HALT


def test_microbenchmark_suite_builds_all():
    programs = microbenchmark_suite()
    assert len(programs) == len(_TABLE2_ORDER) + len(_EXTRA)


class TestControl:
    def test_cc_variants_differ_only_in_padding(self):
        a = control_conditional(variant="a")
        b = control_conditional(variant="b")
        non_nop_a = [i.opcode for i in a if i.klass is not InstrClass.NOP]
        non_nop_b = [i.opcode for i in b if i.klass is not InstrClass.NOP]
        assert non_nop_a == non_nop_b
        # The padding *placement* differs (that is the whole point:
        # different line-predictor training), even if counts coincide.
        layout_a = [i.opcode for i in a]
        layout_b = [i.opcode for i in b]
        assert layout_a != layout_b

    def test_cc_alternates(self):
        trace = run_program(control_conditional(iterations=100))
        branches = [d for d in trace
                    if d.klass is InstrClass.COND_BRANCH and d.slot is not None]
        # The if-branch alternates; the loop-back is nearly always taken.
        outcomes = [d.taken for d in branches]
        assert True in outcomes and False in outcomes

    def test_cr_recursion_depth(self):
        trace = run_program(build_microbenchmark("C-R"))
        calls = sum(1 for d in trace if d.klass is InstrClass.CALL)
        rets = sum(1 for d in trace if d.klass is InstrClass.RETURN)
        assert calls == rets
        assert calls > 1000

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_cs_case_period(self, n):
        program = control_switch(n, iterations=60, cases=10)
        trace = run_program(program)
        jumps = [d for d in trace if d.klass is InstrClass.JUMP]
        assert len(jumps) == 60
        # Target changes exactly every n executions.
        targets = [d.next_pc for d in jumps]
        for i in range(0, 30, n):
            group = targets[i:i + n]
            assert len(set(group)) == 1

    def test_cs_rejects_bad_n(self):
        with pytest.raises(ValueError):
            control_switch(0)


class TestExecute:
    def test_ei_has_no_memory_ops(self):
        trace = run_program(build_microbenchmark("E-I"))
        assert not any(d.is_memory for d in trace)

    def test_ef_is_fp(self):
        trace = run_program(build_microbenchmark("E-F"))
        fp_ops = sum(d.klass is InstrClass.FP_ADD for d in trace)
        assert fp_ops > len(trace) * 0.9

    def test_edn_dependence_distance(self):
        program = execute_dependent(3, iterations=2, body=12)
        body = [i for i in program.instructions
                if i.opcode is Opcode.ADDQ and i.imm == 1 and i.dest != "r1"]
        dests = [i.dest for i in body[:12]]
        assert dests[0] == dests[3] == dests[6]
        assert dests[1] == dests[4]

    def test_edn_rejects_bad_n(self):
        with pytest.raises(ValueError):
            execute_dependent(9)

    def test_edm1_is_multiplies(self):
        trace = run_program(build_microbenchmark("E-DM1"))
        muls = sum(d.klass is InstrClass.INT_MUL for d in trace)
        assert muls > len(trace) * 0.8


class TestMemory:
    def test_md_chain_is_dependent(self):
        trace = run_program(build_microbenchmark("M-D"))
        loads = [d for d in trace if d.is_load]
        # Every load's address register is its own destination (chase).
        assert all("r9" in d.srcs and d.dest == "r9" for d in loads)

    def test_mm_footprint_exceeds_l2(self):
        program = memory_memory()
        addresses = {a for a in program.data}
        span = max(addresses) - min(addresses)
        assert span > 2 * 1024 * 1024

    def test_mi_loads_are_independent(self):
        trace = run_program(build_microbenchmark("M-I"))
        loads = [d for d in trace if d.is_load]
        assert all(d.dest != "r9" for d in loads)  # base never clobbered

    def test_mip_code_exceeds_icache(self):
        program = build_microbenchmark("M-IP")
        assert len(program.instructions) * 4 > 64 * 1024
