"""Shape tests across microbenchmark parameter sweeps.

The microbenchmark families are *parameterised* probes; their IPC must
move the way the mechanism they isolate predicts: E-Dn scales with the
number of independent chains, C-Sn improves with jump-target dwell
time, and the memory chases order by hierarchy level.
"""

import pytest

from repro.core.simalpha import SimAlpha
from repro.functional.machine import run_program
from repro.validation.harness import Harness
from repro.workloads.micro import control_switch, execute_dependent


@pytest.fixture(scope="module")
def harness():
    return Harness()


def _ipc(program):
    return SimAlpha().run_trace(run_program(program), program.name).ipc


class TestEdnScaling:
    def test_ipc_tracks_chain_count_up_to_width(self):
        """E-Dn IPC ~= n for n <= 3 (one add per chain per cycle)."""
        ipcs = {n: _ipc(execute_dependent(n, iterations=150))
                for n in (1, 2, 3)}
        assert ipcs[1] == pytest.approx(1.0, abs=0.1)
        assert ipcs[2] == pytest.approx(2.0, abs=0.15)
        assert ipcs[3] == pytest.approx(3.0, abs=0.25)

    def test_saturates_below_issue_width(self):
        """Beyond the ~4-wide core the chains stop helping."""
        six = _ipc(execute_dependent(6, iterations=150))
        eight = _ipc(execute_dependent(8, iterations=150))
        assert six <= 4.05 and eight <= 4.05


class TestCsnScaling:
    def test_longer_dwell_means_fewer_flushes(self):
        """C-Sn improves with n: the jump target changes less often."""
        ipcs = [_ipc(control_switch(n, iterations=800)) for n in (1, 2, 4)]
        assert ipcs[0] < ipcs[1] < ipcs[2]

    def test_more_cases_do_not_help_cs1(self):
        """With a per-iteration target change, the case count is
        irrelevant to the flush rate."""
        few = _ipc(control_switch(1, iterations=600, cases=4))
        many = _ipc(control_switch(1, iterations=600, cases=16))
        assert many == pytest.approx(few, rel=0.15)


class TestMemoryLevels:
    def test_chase_ipc_orders_by_level(self, harness):
        """M-D > M-L2 > M-M: latency per level orders the chases."""
        sim = SimAlpha()
        ipcs = {}
        for name in ("M-D", "M-L2", "M-M"):
            trace = harness.workloads.trace(name)
            ipcs[name] = sim.run_trace(trace, name).ipc
        assert ipcs["M-D"] > ipcs["M-L2"] > ipcs["M-M"]

    def test_bandwidth_beats_latency(self, harness):
        """M-I (independent loads) far outruns M-D (dependent chase)."""
        sim = SimAlpha()
        mi = sim.run_trace(harness.workloads.trace("M-I"), "M-I").ipc
        md = sim.run_trace(harness.workloads.trace("M-D"), "M-D").ipc
        assert mi > 1.2 * md
