"""Architectural-correctness tests for the classic kernels.

These are end-to-end checks of the functional machine: the kernels
must compute the *right answers*, not just run.
"""

import pytest

from repro.core.simalpha import SimAlpha
from repro.functional.machine import FunctionalMachine
from repro.workloads.kernels import (
    binary_search,
    bubble_sort,
    checksum,
    kernel_suite,
    matmul,
    memcpy_kernel,
)


def test_matmul_identity():
    """A * I == A, computed in the ISA."""
    program = matmul(n=8)
    machine = FunctionalMachine(program)
    machine.run()
    n = program.n
    for i in range(n):
        for j in range(n):
            value = machine.state.memory.load_word(
                program.c_base + 8 * (i * n + j)
            )
            assert value == i + j, (i, j)


def test_memcpy_copies_exactly():
    program = memcpy_kernel(words=256)
    machine = FunctionalMachine(program)
    machine.run()
    for i in range(program.words):
        src = machine.state.memory.load_word(program.src_base + 8 * i)
        dst = machine.state.memory.load_word(program.dst_base + 8 * i)
        assert src == dst


def test_binary_search_finds_even_keys():
    program = binary_search(size=256, probes=200)
    machine = FunctionalMachine(program)
    machine.run()
    found = machine.state.read_int(program.found_reg)
    # Keys are mixed even (present) and odd (absent): about half hit.
    assert 0 < found < 200
    expected = sum(
        1 for p in range(200)
        if ((p * 2654435761) & (2 * 256 - 1)) % 2 == 0
    )
    assert found == expected


def test_bubble_sort_sorts():
    program = bubble_sort(size=32)
    machine = FunctionalMachine(program)
    machine.run()
    values = [
        machine.state.memory.load_word(program.table_base + 8 * i)
        for i in range(program.size)
    ]
    assert values == sorted(values)
    assert values == list(range(1, 33))


def test_checksum_matches_python():
    words = 512
    program = checksum(words=words)
    machine = FunctionalMachine(program)
    machine.run()
    mask = (1 << 64) - 1
    expected = 0
    for i in range(words):
        expected ^= (i * 2654435761) & mask
        expected = ((expected << 13) | (expected >> 51)) & mask
    assert machine.state.read_int(program.checksum_reg) == expected


def test_kernels_time_on_simalpha():
    """Every kernel also runs through the timing engine."""
    for program in kernel_suite():
        machine = FunctionalMachine(program)
        trace = machine.run()
        result = SimAlpha().run_trace(trace, program.name)
        assert 0.05 < result.ipc <= 4.5, program.name


def test_binary_search_is_branchy():
    """Data-dependent direction branches: the predictor struggles."""
    program = binary_search(size=512, probes=300)
    trace = FunctionalMachine(program).run()
    result = SimAlpha().run_trace(trace, program.name)
    assert result.stats.branch_mispredicts > 200
