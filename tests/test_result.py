"""Tests for the result records and the top-level public API."""

import repro
from repro.result import RunStats, SimResult


class TestSimResult:
    def test_ipc_cpi(self):
        result = SimResult("s", "w", cycles=200.0, instructions=100)
        assert result.ipc == 0.5
        assert result.cpi == 2.0

    def test_zero_guards(self):
        assert SimResult("s", "w", 0.0, 100).ipc == 0.0
        assert SimResult("s", "w", 100.0, 0).cpi == 0.0

    def test_str(self):
        text = str(SimResult("sim-alpha", "C-R", 100.0, 50))
        assert "sim-alpha" in text and "C-R" in text and "0.50" in text


class TestRunStats:
    def test_replay_trap_aggregate(self):
        stats = RunStats(store_replay_traps=2, load_order_traps=3,
                         mbox_traps=5)
        assert stats.replay_traps == 10

    def test_defaults_zero(self):
        stats = RunStats()
        assert stats.branch_mispredicts == 0
        assert stats.extra == {}


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_core_entry_points(self):
        assert callable(repro.SimAlpha)
        assert callable(repro.NativeMachine)
        assert callable(repro.build_microbenchmark)
