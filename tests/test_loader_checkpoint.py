"""Tests for the program loader and architectural checkpoints."""

import pytest

from repro.functional.checkpoint import (
    load_checkpoint,
    restore,
    save_checkpoint,
    snapshot,
)
from repro.functional.machine import FunctionalMachine
from repro.isa.assembler import assemble
from repro.isa.loader import load_program, program_digest, save_program
from repro.workloads.kernels import checksum
from repro.workloads.micro import control_recursive


class TestLoader:
    def test_save_load_roundtrip(self, tmp_path):
        program = checksum(words=64)
        path = tmp_path / "checksum.img"
        digest = save_program(program, path)
        reloaded = load_program(path)
        assert program_digest(reloaded) == digest
        assert reloaded.name == program.name

    def test_digest_is_content_addressed(self):
        a = checksum(words=64)
        b = checksum(words=64)
        c = checksum(words=65)
        assert program_digest(a) == program_digest(b)
        assert program_digest(a) != program_digest(c)

    def test_reloaded_program_times_identically(self, tmp_path):
        from repro.core.simalpha import SimAlpha
        from repro.functional.machine import run_program

        program = control_recursive(depth=50, outer=3)
        path = tmp_path / "cr.img"
        save_program(program, path)
        reloaded = load_program(path)
        original = SimAlpha().run_trace(run_program(program), "C-R")
        replayed = SimAlpha().run_trace(run_program(reloaded), "C-R")
        assert original.cycles == replayed.cycles


class TestCheckpoint:
    def _run_state(self):
        program = assemble("""
            lda r1, #42
            lda r2, #4096
            stq r1, 0(r2)
            halt
        """)
        machine = FunctionalMachine(program)
        machine.run()
        return machine.state

    def test_snapshot_restore_roundtrip(self):
        state = self._run_state()
        restored = restore(snapshot(state))
        assert restored.read_int("r1") == 42
        assert restored.memory.load_word(4096) == 42

    def test_file_roundtrip(self, tmp_path):
        state = self._run_state()
        path = tmp_path / "ckpt.json"
        save_checkpoint(state, path)
        restored = load_checkpoint(path)
        assert restored.read_int("r2") == 4096
        assert restored.memory.load_word(4096) == 42

    def test_restore_is_independent(self):
        state = self._run_state()
        restored = restore(snapshot(state))
        restored.write_int("r1", 0)
        restored.memory.store_word(4096, 0)
        assert state.read_int("r1") == 42
        assert state.memory.load_word(4096) == 42

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="not a checkpoint"):
            restore({"format": "something-else"})

    def test_fp_state_preserved(self):
        from repro.functional.machine import ArchState

        state = ArchState()
        state.write_fp("f3", 2.5)
        restored = restore(snapshot(state))
        assert restored.read_fp("f3") == 2.5
